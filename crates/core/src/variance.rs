//! The per-shot variance feature vector (§4.1, Eqs. 3–6) and `D^v`.
//!
//! For shot `i` spanning frames `k..=l`:
//!
//! ```text
//! mean_i = ( Σ_{j=k..l} Sign_j ) / (l − k + 1)            (Eqs. 4, 6)
//! Var_i  = ( Σ_{j=k..l} (Sign_j − mean_i)² ) / (l − k)    (Eqs. 3, 5)
//! ```
//!
//! Note the paper's asymmetric denominators: the mean divides by the frame
//! count but the variance divides by `l − k` (the sample-variance `n − 1`).
//! We reproduce this exactly and define the variance of a single-frame shot
//! as 0 (the paper's formula would divide by zero).
//!
//! A sign is an RGB pixel; the variance is computed per channel and the
//! three channel variances averaged to one scalar, which makes `√Var`
//! commensurate with the magnitudes the paper reports (e.g. `Var^BA` =
//! 17.37 for a close-up shot of 'Wag the Dog').
//!
//! `Var^BA` (background) and `Var^OA` (object area) together "capture the
//! spatio-temporal semantics of the video shot": a talking head has tiny
//! `Var^BA` and small `Var^OA`; a running subject with a panning camera has
//! both large.

use crate::pixel::Rgb;
use serde::{Deserialize, Serialize};

/// Variance of a sequence of signs per the paper's Eqs. 3–4: per-channel
/// population sum of squared deviations from the mean, divided by
/// `len − 1`, averaged over the three channels. Returns 0.0 for sequences
/// of length ≤ 1.
pub fn sign_variance(signs: &[Rgb]) -> f64 {
    let n = signs.len();
    if n <= 1 {
        return 0.0;
    }
    let mut sums = [0.0f64; 3];
    for s in signs {
        let c = s.channels_f64();
        for ch in 0..3 {
            sums[ch] += c[ch];
        }
    }
    let means = [sums[0] / n as f64, sums[1] / n as f64, sums[2] / n as f64];
    let mut sq = [0.0f64; 3];
    for s in signs {
        let c = s.channels_f64();
        for ch in 0..3 {
            let d = c[ch] - means[ch];
            sq[ch] += d * d;
        }
    }
    // Eq. 3: denominator l − k = n − 1.
    let denom = (n - 1) as f64;
    (sq[0] + sq[1] + sq[2]) / (3.0 * denom)
}

/// Per-channel variant of [`sign_variance`]: Eqs. 3–4 evaluated separately
/// on the red, green and blue sign channels. The basis of the *extended*
/// similarity model (§6: "we are currently investigating extensions to our
/// variance-based similarity model to make the comparison more
/// discriminating") — two shots whose per-channel variances differ can
/// still collide after channel averaging.
pub fn sign_variance_per_channel(signs: &[Rgb]) -> [f64; 3] {
    let n = signs.len();
    if n <= 1 {
        return [0.0; 3];
    }
    let means = sign_mean(signs);
    let mut sq = [0.0f64; 3];
    for s in signs {
        let c = s.channels_f64();
        for ch in 0..3 {
            let d = c[ch] - means[ch];
            sq[ch] += d * d;
        }
    }
    let denom = (n - 1) as f64;
    [sq[0] / denom, sq[1] / denom, sq[2] / denom]
}

/// Mean sign (Eqs. 4/6) as floating-point channels.
pub fn sign_mean(signs: &[Rgb]) -> [f64; 3] {
    if signs.is_empty() {
        return [0.0; 3];
    }
    let mut sums = [0.0f64; 3];
    for s in signs {
        let c = s.channels_f64();
        for ch in 0..3 {
            sums[ch] += c[ch];
        }
    }
    let n = signs.len() as f64;
    [sums[0] / n, sums[1] / n, sums[2] / n]
}

/// The two-value feature vector of one shot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShotFeature {
    /// `Var^BA`: variance of the background signs within the shot.
    pub var_ba: f64,
    /// `Var^OA`: variance of the object-area signs within the shot.
    pub var_oa: f64,
}

impl ShotFeature {
    /// Compute from the per-frame sign sequences of one shot.
    pub fn from_signs(signs_ba: &[Rgb], signs_oa: &[Rgb]) -> Self {
        ShotFeature {
            var_ba: sign_variance(signs_ba),
            var_oa: sign_variance(signs_oa),
        }
    }

    /// `√Var^BA`, the quantity thresholded by Eq. 8.
    #[inline]
    pub fn sqrt_ba(&self) -> f64 {
        self.var_ba.sqrt()
    }

    /// `√Var^OA`.
    #[inline]
    pub fn sqrt_oa(&self) -> f64 {
        self.var_oa.sqrt()
    }

    /// `D^v = √Var^BA − √Var^OA` (§4.2), the primary index key.
    #[inline]
    pub fn d_v(&self) -> f64 {
        self.sqrt_ba() - self.sqrt_oa()
    }
}

/// The extended (per-channel) feature vector of one shot: six values
/// instead of two. Collapses back to the paper's [`ShotFeature`] by
/// averaging the channels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExtendedShotFeature {
    /// Per-channel `Var^BA`.
    pub var_ba: [f64; 3],
    /// Per-channel `Var^OA`.
    pub var_oa: [f64; 3],
}

impl ExtendedShotFeature {
    /// Compute from the per-frame sign sequences of one shot.
    pub fn from_signs(signs_ba: &[Rgb], signs_oa: &[Rgb]) -> Self {
        ExtendedShotFeature {
            var_ba: sign_variance_per_channel(signs_ba),
            var_oa: sign_variance_per_channel(signs_oa),
        }
    }

    /// Per-channel `D^v`.
    pub fn d_v(&self) -> [f64; 3] {
        core::array::from_fn(|ch| self.var_ba[ch].sqrt() - self.var_oa[ch].sqrt())
    }

    /// The paper's two-value model: channel-averaged variances.
    pub fn collapse(&self) -> ShotFeature {
        ShotFeature {
            var_ba: (self.var_ba[0] + self.var_ba[1] + self.var_ba[2]) / 3.0,
            var_oa: (self.var_oa[0] + self.var_oa[1] + self.var_oa[2]) / 3.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constant_signs_have_zero_variance() {
        let signs = vec![Rgb::new(10, 20, 30); 50];
        assert_eq!(sign_variance(&signs), 0.0);
    }

    #[test]
    fn empty_and_singleton_are_zero() {
        assert_eq!(sign_variance(&[]), 0.0);
        assert_eq!(sign_variance(&[Rgb::gray(99)]), 0.0);
    }

    #[test]
    fn hand_computed_two_frame_variance() {
        // Signs gray(10) and gray(20): per channel mean 15, squared devs
        // 25 + 25 = 50, divided by (n-1)=1 -> 50 per channel -> average 50.
        let signs = [Rgb::gray(10), Rgb::gray(20)];
        assert!((sign_variance(&signs) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn channel_averaging() {
        // Only the red channel varies: r = 0, 20 -> var_r = 200; g, b constant.
        let signs = [Rgb::new(0, 7, 9), Rgb::new(20, 7, 9)];
        assert!((sign_variance(&signs) - 200.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn more_change_more_variance() {
        let calm: Vec<Rgb> = (0..20).map(|i| Rgb::gray(100 + (i % 2) as u8)).collect();
        let wild: Vec<Rgb> = (0..20).map(|i| Rgb::gray((i * 13 % 256) as u8)).collect();
        assert!(sign_variance(&wild) > sign_variance(&calm) * 10.0);
    }

    #[test]
    fn mean_matches_eq4() {
        let signs = [Rgb::new(0, 10, 100), Rgb::new(10, 20, 200)];
        let m = sign_mean(&signs);
        assert_eq!(m, [5.0, 15.0, 150.0]);
    }

    #[test]
    fn dv_definition() {
        let f = ShotFeature {
            var_ba: 16.0,
            var_oa: 9.0,
        };
        assert!((f.d_v() - 1.0).abs() < 1e-12); // 4 - 3
        assert_eq!(f.sqrt_ba(), 4.0);
        assert_eq!(f.sqrt_oa(), 3.0);
    }

    #[test]
    fn talking_head_vs_action_signature() {
        // Paper's qualitative claim: a static-background talking head has
        // Var^BA near 0; a moving camera + moving subject has both large.
        let static_bg: Vec<Rgb> = vec![Rgb::new(200, 150, 140); 30];
        let moving_bg: Vec<Rgb> = (0..30).map(|i| Rgb::gray((i * 8) as u8)).collect();
        let still_obj: Vec<Rgb> = (0..30).map(|i| Rgb::gray(90 + (i % 3) as u8)).collect();
        let talking = ShotFeature::from_signs(&static_bg, &still_obj);
        let action = ShotFeature::from_signs(&moving_bg, &moving_bg);
        assert_eq!(talking.var_ba, 0.0);
        assert!(action.var_ba > 100.0);
        assert!(talking.d_v() < action.d_v() + 100.0); // smoke: both finite
    }

    #[test]
    fn per_channel_variance_isolates_channels() {
        // Only red varies.
        let signs = [Rgb::new(0, 7, 9), Rgb::new(20, 7, 9)];
        let v = sign_variance_per_channel(&signs);
        assert_eq!(v, [200.0, 0.0, 0.0]);
    }

    #[test]
    fn extended_collapse_matches_basic() {
        let signs_ba: Vec<Rgb> = (0..20)
            .map(|i| Rgb::new((i * 9) as u8, 10, (i * 3) as u8))
            .collect();
        let signs_oa: Vec<Rgb> = (0..20).map(|i| Rgb::gray((i * 5) as u8)).collect();
        let basic = ShotFeature::from_signs(&signs_ba, &signs_oa);
        let ext = ExtendedShotFeature::from_signs(&signs_ba, &signs_oa);
        let collapsed = ext.collapse();
        assert!((collapsed.var_ba - basic.var_ba).abs() < 1e-9);
        assert!((collapsed.var_oa - basic.var_oa).abs() < 1e-9);
    }

    #[test]
    fn extended_discriminates_where_basic_collides() {
        // Shot A: all change in red; shot B: the same total change spread
        // evenly. Identical channel-averaged variance, very different
        // per-channel vectors — the §6 motivation.
        let a: Vec<Rgb> = (0..16)
            .map(|i| Rgb::new((i * 15) as u8, 100, 100))
            .collect();
        // spread: each channel gets variance var_r/3 -> scale amplitude by sqrt(1/3)...
        // construct numerically instead: use per-channel ramps with 1/sqrt(3) slope.
        let slope = 15.0f64 / 3.0f64.sqrt();
        let b: Vec<Rgb> = (0..16)
            .map(|i| {
                let v = (f64::from(i as u8) * slope) as u8;
                Rgb::new(v, v, v)
            })
            .collect();
        let fa = ExtendedShotFeature::from_signs(&a, &a);
        let fb = ExtendedShotFeature::from_signs(&b, &b);
        // Channel-averaged variances land close...
        let (ca, cb) = (fa.collapse(), fb.collapse());
        assert!(
            (ca.var_ba - cb.var_ba).abs() / ca.var_ba.max(cb.var_ba) < 0.25,
            "basic model nearly collides: {} vs {}",
            ca.var_ba,
            cb.var_ba
        );
        // ...but the per-channel vectors are far apart in red vs green.
        assert!(fa.var_ba[0] > 4.0 * fa.var_ba[1].max(1.0));
        assert!(fb.var_ba[0] < 2.0 * fb.var_ba[1].max(1.0));
    }

    proptest! {
        #[test]
        fn prop_per_channel_mean_is_basic(values in prop::collection::vec(any::<[u8;3]>(), 0..48)) {
            let signs: Vec<Rgb> = values.into_iter().map(Rgb).collect();
            let per = sign_variance_per_channel(&signs);
            let mean = (per[0] + per[1] + per[2]) / 3.0;
            prop_assert!((mean - sign_variance(&signs)).abs() < 1e-9);
        }

        #[test]
        fn prop_variance_nonnegative(values in prop::collection::vec(any::<[u8;3]>(), 0..64)) {
            let signs: Vec<Rgb> = values.into_iter().map(Rgb).collect();
            prop_assert!(sign_variance(&signs) >= 0.0);
        }

        #[test]
        fn prop_variance_zero_iff_constant(values in prop::collection::vec(any::<[u8;3]>(), 2..64)) {
            let signs: Vec<Rgb> = values.into_iter().map(Rgb).collect();
            let v = sign_variance(&signs);
            let constant = signs.windows(2).all(|w| w[0] == w[1]);
            if constant {
                prop_assert_eq!(v, 0.0);
            } else {
                prop_assert!(v > 0.0);
            }
        }

        #[test]
        fn prop_variance_translation_invariant(
            values in prop::collection::vec(0u8..200, 2..32),
            offset in 0u8..50,
        ) {
            let a: Vec<Rgb> = values.iter().map(|&v| Rgb::gray(v)).collect();
            let b: Vec<Rgb> = values.iter().map(|&v| Rgb::gray(v + offset)).collect();
            prop_assert!((sign_variance(&a) - sign_variance(&b)).abs() < 1e-9);
        }

        #[test]
        fn prop_mean_in_hull(values in prop::collection::vec(any::<[u8;3]>(), 1..64)) {
            let signs: Vec<Rgb> = values.iter().map(|&v| Rgb(v)).collect();
            let m = sign_mean(&signs);
            for ch in 0..3 {
                let lo = values.iter().map(|v| v[ch]).min().unwrap() as f64;
                let hi = values.iter().map(|v| v[ch]).max().unwrap() as f64;
                prop_assert!(m[ch] >= lo - 1e-9 && m[ch] <= hi + 1e-9);
            }
        }
    }
}
