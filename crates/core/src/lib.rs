//! # vdb-core
//!
//! A from-scratch implementation of the video organization / browsing /
//! indexing framework of **Oh & Hua, "Efficient and Cost-effective
//! Techniques for Browsing and Indexing Large Video Databases", SIGMOD
//! 2000**:
//!
//! 1. **Camera-tracking shot boundary detection** ([`sbd`]): each frame's
//!    ⊓-shaped background area is reduced by a modified Gaussian pyramid
//!    ([`pyramid`]) to a one-row *signature* and a one-pixel *sign*; a
//!    three-stage cascade (sign test → signature test → shift-and-match
//!    background tracking) splits the video into shots.
//! 2. **Scene trees** ([`scenetree`]): shots sharing similar backgrounds
//!    (algorithm RELATIONSHIP, [`relationship`]) are grouped bottom-up into
//!    a browsing hierarchy of unbounded height whose shape reflects the
//!    video's semantic complexity.
//! 3. **Variance-based indexing** ([`index`]): each shot's feature vector is
//!    the pair of sign variances `(Var^BA, Var^OA)` ([`variance`]); an
//!    index keyed on `D^v = √Var^BA − √Var^OA` answers similarity queries
//!    (Eqs. 7–8) that seed scene-tree browsing.
//!
//! The [`analyzer::VideoAnalyzer`] facade runs all three steps:
//!
//! ```
//! use vdb_core::analyzer::VideoAnalyzer;
//! use vdb_core::frame::{FrameBuf, Video};
//! use vdb_core::pixel::Rgb;
//!
//! // Two static "shots" with very different content.
//! let mut frames = vec![FrameBuf::filled(80, 60, Rgb::gray(30)); 5];
//! frames.extend(vec![FrameBuf::filled(80, 60, Rgb::gray(200)); 5]);
//! let video = Video::new(frames, 3.0).unwrap();
//!
//! let analysis = VideoAnalyzer::new().analyze(&video).unwrap();
//! assert_eq!(analysis.shots().len(), 2);
//! assert_eq!(analysis.segmentation.boundaries, vec![5]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analyzer;
pub mod error;
pub mod features;
pub mod frame;
pub mod geometry;
pub mod index;
pub mod kernels;
pub mod parallel;
pub mod pipeline;
pub mod pixel;
pub mod pyramid;
pub mod relationship;
pub mod sbd;
pub mod scenetree;
pub mod shot;
pub mod signature;
pub mod simd;
pub mod sizeset;
pub mod streaming;
pub mod variance;

pub use analyzer::{AnalyzerConfig, VideoAnalysis, VideoAnalyzer};
pub use error::{CoreError, Result};
pub use frame::{FrameBuf, Video};
pub use index::{
    BucketIndex, BucketParams, CorpusStats, CostEstimate, CostModel, IndexEntry, IndexRuntime,
    Match, Plan, PlanChoice, ProbeStats, ShotIndex, ShotKey, SigGraph, VarianceIndex,
    VarianceQuery,
};
pub use parallel::Parallelism;
pub use pipeline::{AnalysisEngine, PipelineMetrics, PushOutcome};
pub use pixel::Rgb;
pub use sbd::{CameraTrackingDetector, SbdConfig, Segmentation};
pub use scenetree::{build_scene_tree, SceneTree};
pub use shot::Shot;
pub use simd::{ResolvedIsa, SimdIsa, SimdLevel};
pub use streaming::StreamingAnalyzer;
pub use variance::ShotFeature;
