//! Algorithm RELATIONSHIP (§3.1): are two shots *related*?
//!
//! Two shots are related when they share similar backgrounds. The paper's
//! algorithm walks the first shot's frames once while cycling through the
//! second shot's frames, comparing one `Sign^BA` pair per step with Eq. 2:
//!
//! ```text
//! D_s = (max. difference in Sign^BA s / 256) × 100 %
//! ```
//!
//! and declares the shots related as soon as some pair has `D_s < 10 %`.
//! We reproduce the iteration literally — including its quirk that `i` and
//! `j` advance in lock-step (so at most `|A|` of the `|A|·|B|` pairs are
//! examined; the paper notes the average cost is much less than the
//! `O(|A|·|B|)` bound because the scan stops at the first related pair).

use crate::pixel::Rgb;

/// Eq. 2 relatedness threshold: `D_s < 10 %` ⇔ max channel diff `< 25.6`.
pub const RELATED_THRESHOLD_PERCENT: f64 = 10.0;

/// Eq. 2: the percentage difference between two background signs.
#[inline]
pub fn d_s(a: Rgb, b: Rgb) -> f64 {
    a.percent_diff(b)
}

/// Algorithm RELATIONSHIP with the paper's exact iteration and threshold.
///
/// `a` and `b` are the per-frame `Sign^BA` sequences of the two shots.
pub fn shots_related(a: &[Rgb], b: &[Rgb]) -> bool {
    shots_related_with_threshold(a, b, RELATED_THRESHOLD_PERCENT)
}

/// Algorithm RELATIONSHIP with an explicit `D_s` threshold (exposed for the
/// sensitivity-sweep experiments).
pub fn shots_related_with_threshold(a: &[Rgb], b: &[Rgb], threshold_percent: f64) -> bool {
    if a.is_empty() || b.is_empty() {
        return false;
    }
    // Step 1: i <- 1, j <- 1 (0-based here).
    let mut i = 0usize;
    let mut j = 0usize;
    loop {
        // Step 2 & 3: compare, stop if related.
        if d_s(a[i], b[j]) < threshold_percent {
            return true;
        }
        // Step 4: advance i; stop when A is exhausted; cycle j through B.
        i += 1;
        if i >= a.len() {
            return false;
        }
        j += 1;
        if j >= b.len() {
            j = 0;
        }
    }
}

/// The pair `(i, j)` (0-based frame offsets) at which RELATIONSHIP first
/// succeeds, or `None`. Useful for diagnostics and tests.
pub fn first_related_pair(a: &[Rgb], b: &[Rgb], threshold_percent: f64) -> Option<(usize, usize)> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let mut i = 0usize;
    let mut j = 0usize;
    loop {
        if d_s(a[i], b[j]) < threshold_percent {
            return Some((i, j));
        }
        i += 1;
        if i >= a.len() {
            return None;
        }
        j += 1;
        if j >= b.len() {
            j = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_backgrounds_related_immediately() {
        let a = vec![Rgb::new(100, 120, 90); 5];
        let b = vec![Rgb::new(101, 119, 92); 7];
        assert!(shots_related(&a, &b));
        assert_eq!(first_related_pair(&a, &b, 10.0), Some((0, 0)));
    }

    #[test]
    fn threshold_is_strict_inequality() {
        // D_s exactly 10% (max diff 25.6 is not attainable with integers;
        // 26/256 = 10.15% > 10%, 25/256 = 9.77% < 10%).
        let a = [Rgb::gray(100)];
        let just_related = [Rgb::gray(125)]; // diff 25 -> 9.77%
        let not_related = [Rgb::gray(126)]; // diff 26 -> 10.16%
        assert!(shots_related(&a, &just_related));
        assert!(!shots_related(&a, &not_related));
    }

    #[test]
    fn lockstep_iteration_can_miss_pairs() {
        // Documented quirk: a related pair exists at (0, 1) but the
        // lock-step scan only visits (0,0), (1,1), (2,0) for |A|=3, |B|=2.
        let a = [Rgb::gray(0), Rgb::gray(0), Rgb::gray(0)];
        let b = [Rgb::gray(200), Rgb::gray(10)];
        // Visited pairs: (0,200) diff 200; (0,10) diff 10 -> related!
        // (i=1 pairs with j=1.)
        assert!(shots_related(&a, &b));
        // Now make the only related value sit where lock-step never looks:
        // |A| = 2, |B| = 3: visited pairs are (0,0), (1,1).
        let a2 = [Rgb::gray(0), Rgb::gray(0)];
        let b2 = [Rgb::gray(200), Rgb::gray(180), Rgb::gray(5)];
        assert!(
            !shots_related(&a2, &b2),
            "lock-step scan must not find the pair at (·, 2)"
        );
    }

    #[test]
    fn empty_shots_are_unrelated() {
        let a = [Rgb::gray(0)];
        assert!(!shots_related(&a, &[]));
        assert!(!shots_related(&[], &a));
        assert!(!shots_related(&[], &[]));
    }

    #[test]
    fn wrapping_j_revisits_b() {
        // |A| = 5, |B| = 2: j cycles 0,1,0,1,0 while i walks 0..5; the
        // related value at b[0] is found when i = 2.
        let a = [
            Rgb::gray(100),
            Rgb::gray(100),
            Rgb::gray(0),
            Rgb::gray(100),
            Rgb::gray(100),
        ];
        let b = [Rgb::gray(10), Rgb::gray(200)];
        assert_eq!(first_related_pair(&a, &b, 10.0), Some((2, 0)));
    }

    #[test]
    fn custom_threshold() {
        let a = [Rgb::gray(0)];
        let b = [Rgb::gray(100)]; // D_s = 39.06%
        assert!(!shots_related_with_threshold(&a, &b, 30.0));
        assert!(shots_related_with_threshold(&a, &b, 40.0));
    }

    proptest! {
        #[test]
        fn prop_related_implies_witness(
            a in prop::collection::vec(any::<[u8;3]>(), 1..16),
            b in prop::collection::vec(any::<[u8;3]>(), 1..16),
        ) {
            let a: Vec<Rgb> = a.into_iter().map(Rgb).collect();
            let b: Vec<Rgb> = b.into_iter().map(Rgb).collect();
            let related = shots_related(&a, &b);
            let witness = first_related_pair(&a, &b, 10.0);
            prop_assert_eq!(related, witness.is_some());
            if let Some((i, j)) = witness {
                prop_assert!(d_s(a[i], b[j]) < 10.0);
            }
        }

        #[test]
        fn prop_self_related(a in prop::collection::vec(any::<[u8;3]>(), 1..16)) {
            let a: Vec<Rgb> = a.into_iter().map(Rgb).collect();
            // Pair (0, 0) compares a frame with itself: D_s = 0 < 10%.
            prop_assert!(shots_related(&a, &a));
        }

        #[test]
        fn prop_visited_pairs_bounded_by_len_a(
            a in prop::collection::vec(any::<[u8;3]>(), 1..16),
            b in prop::collection::vec(any::<[u8;3]>(), 1..16),
        ) {
            let a: Vec<Rgb> = a.into_iter().map(Rgb).collect();
            let b: Vec<Rgb> = b.into_iter().map(Rgb).collect();
            if let Some((i, _)) = first_related_pair(&a, &b, 10.0) {
                prop_assert!(i < a.len());
            }
        }
    }
}
