//! Incremental analysis: frames pushed one at a time.
//!
//! [`crate::analyzer::VideoAnalyzer`] wants the whole video in memory —
//! fine for the paper's ten-minute clips, wrong for "large video
//! databases". [`StreamingAnalyzer`] consumes frames as they arrive and
//! keeps only O(signs) state: the previous frame's features (one signature,
//! two signs) plus the per-frame sign history the scene tree and variance
//! features need (6 bytes per frame — 4.7 MB for a 24-hour broadcast day).
//! Frames themselves are never retained.
//!
//! This type is a stateful wrapper around [`AnalysisEngine`] — every push
//! runs the same cascade code the batch analyzer runs, so `finish()`
//! produces exactly what the batch analyzer produces by construction.

use crate::analyzer::{AnalyzerConfig, VideoAnalysis};
use crate::error::Result;
use crate::frame::FrameBuf;
use crate::pipeline::AnalysisEngine;

pub use crate::pipeline::PushOutcome;

/// Frame-at-a-time analyzer.
#[derive(Debug, Default)]
pub struct StreamingAnalyzer {
    engine: AnalysisEngine,
}

impl StreamingAnalyzer {
    /// Analyzer with the given configuration.
    pub fn new(config: AnalyzerConfig) -> Self {
        StreamingAnalyzer {
            engine: AnalysisEngine::new(config),
        }
    }

    /// Frames consumed so far.
    pub fn frame_count(&self) -> usize {
        self.engine.frame_count()
    }

    /// Boundaries confirmed so far (final: streaming decisions never
    /// change retroactively).
    pub fn boundaries(&self) -> &[usize] {
        self.engine.boundaries()
    }

    /// Dimensions locked by the first pushed frame (`None` before the
    /// first push). Every later frame must match or `push` rejects it.
    pub fn dims(&self) -> Option<(u32, u32)> {
        self.engine.dims()
    }

    /// Consume the next frame. All frames must share the first frame's
    /// dimensions; a mismatched frame is rejected without being consumed.
    pub fn push(&mut self, frame: &FrameBuf) -> Result<PushOutcome> {
        self.engine.push_frame(frame)
    }

    /// Consume a batch of frames: features are extracted up front (in
    /// parallel, per the config's [`crate::parallel::Parallelism`]), then
    /// fed through the sequential cascade in order. Equivalent to calling
    /// [`StreamingAnalyzer::push`] once per frame, only faster.
    ///
    /// On error nothing is consumed: the cascade only ever sees a batch
    /// whose every frame extracted successfully, mirroring the batch
    /// analyzer's all-or-nothing extraction.
    pub fn push_frames(&mut self, frames: &[FrameBuf]) -> Result<Vec<PushOutcome>> {
        self.engine.push_frames(frames)
    }

    /// Close the stream: finalize the last shot, build the scene tree and
    /// per-shot features.
    ///
    /// # Errors
    /// [`crate::error::CoreError::EmptyVideo`] if no frame was ever pushed.
    pub fn finish(mut self) -> Result<VideoAnalysis> {
        self.engine.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::VideoAnalyzer;
    use crate::error::CoreError;
    use crate::frame::Video;
    use crate::pixel::Rgb;

    fn frames_with_cuts() -> Vec<FrameBuf> {
        let mut frames = Vec::new();
        for (base, n) in [(30u8, 6usize), (140, 5), (220, 7)] {
            for i in 0..n {
                frames.push(FrameBuf::from_fn(80, 60, |x, y| {
                    Rgb::new(
                        base.saturating_add(((x + y) % 12) as u8),
                        base / 2,
                        255 - base,
                    )
                    .lerp(Rgb::gray(base), (i % 2) as f64 * 0.02)
                }));
            }
        }
        frames
    }

    #[test]
    fn streaming_equals_batch() {
        let frames = frames_with_cuts();
        let video = Video::new(frames.clone(), 3.0).unwrap();
        let batch = VideoAnalyzer::new().analyze(&video).unwrap();

        let mut s = StreamingAnalyzer::default();
        for f in &frames {
            s.push(f).unwrap();
        }
        let streamed = s.finish().unwrap();
        assert_eq!(streamed, batch);
    }

    #[test]
    fn push_outcomes_report_boundaries_live() {
        let frames = frames_with_cuts();
        let mut s = StreamingAnalyzer::default();
        let mut outcomes = Vec::new();
        for f in &frames {
            outcomes.push(s.push(f).unwrap());
        }
        assert_eq!(outcomes[0], PushOutcome::First);
        let live_boundaries: Vec<usize> = outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| **o == PushOutcome::Boundary)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(live_boundaries, vec![6, 11]);
        assert_eq!(s.boundaries(), &[6, 11]);
        assert_eq!(s.frame_count(), frames.len());
    }

    #[test]
    fn empty_stream_is_an_explicit_error() {
        assert!(matches!(
            StreamingAnalyzer::default().finish(),
            Err(CoreError::EmptyVideo)
        ));
    }

    #[test]
    fn push_frames_equals_push_one_at_a_time() {
        use crate::parallel::Parallelism;
        let frames = frames_with_cuts();

        let mut serial = StreamingAnalyzer::default();
        let mut serial_outcomes = Vec::new();
        for f in &frames {
            serial_outcomes.push(serial.push(f).unwrap());
        }
        let serial_analysis = serial.finish().unwrap();

        for threads in [1usize, 2, 4] {
            let cfg = AnalyzerConfig {
                parallelism: Parallelism::Threads(threads),
                ..AnalyzerConfig::default()
            };
            // Feed in uneven batches (including an empty one) to exercise
            // batch boundaries crossing shot boundaries.
            let mut batched = StreamingAnalyzer::new(cfg);
            let mut outcomes = Vec::new();
            let mut rest = frames.as_slice();
            for take in [1usize, 0, 5, 3, usize::MAX] {
                let k = take.min(rest.len());
                let (chunk, tail) = rest.split_at(k);
                outcomes.extend(batched.push_frames(chunk).unwrap());
                rest = tail;
            }
            assert_eq!(outcomes, serial_outcomes, "threads={threads}");
            assert_eq!(
                batched.finish().unwrap(),
                serial_analysis,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn push_frames_on_empty_batch_is_a_no_op() {
        let mut s = StreamingAnalyzer::default();
        assert!(s.push_frames(&[]).unwrap().is_empty());
        assert_eq!(s.frame_count(), 0);
        assert!(s.finish().is_err());
    }

    #[test]
    fn push_frames_rejects_tiny_frames_without_consuming() {
        let mut s = StreamingAnalyzer::default();
        assert!(s.push_frames(&vec![FrameBuf::black(8, 8); 3]).is_err());
        assert_eq!(s.frame_count(), 0);
    }

    #[test]
    fn single_frame_stream() {
        let mut s = StreamingAnalyzer::default();
        s.push(&FrameBuf::filled(80, 60, Rgb::gray(77))).unwrap();
        let a = s.finish().unwrap();
        assert_eq!(a.shots().len(), 1);
        assert_eq!(a.frame_count(), 1);
        a.scene_tree.check_invariants().unwrap();
    }

    #[test]
    fn tiny_frames_rejected_on_first_push() {
        let mut s = StreamingAnalyzer::default();
        assert!(s.push(&FrameBuf::black(8, 8)).is_err());
    }

    #[test]
    fn streaming_equals_batch_on_synthetic_genre_clip() {
        // A richer equivalence check via the synth substrate is in the
        // end-to-end integration tests; here a deterministic textured clip.
        let frames: Vec<FrameBuf> = (0..20)
            .map(|t| {
                let world = t / 7; // cuts at 7 and 14
                FrameBuf::from_fn(80, 60, move |x, y| {
                    Rgb::new(
                        ((x * (world + 2) as u32) % 200) as u8,
                        ((y * (world + 3) as u32) % 180) as u8,
                        (40 * world) as u8,
                    )
                })
            })
            .collect();
        let video = Video::new(frames.clone(), 3.0).unwrap();
        let batch = VideoAnalyzer::new().analyze(&video).unwrap();
        let mut s = StreamingAnalyzer::default();
        for f in &frames {
            s.push(f).unwrap();
        }
        assert_eq!(s.finish().unwrap(), batch);
    }
}
