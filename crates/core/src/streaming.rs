//! Incremental analysis: frames pushed one at a time.
//!
//! [`crate::analyzer::VideoAnalyzer`] wants the whole video in memory —
//! fine for the paper's ten-minute clips, wrong for "large video
//! databases". [`StreamingAnalyzer`] consumes frames as they arrive and
//! keeps only O(signs) state: the previous frame's features (one signature,
//! two signs) plus the per-frame sign history the scene tree and variance
//! features need (6 bytes per frame — 4.7 MB for a 24-hour broadcast day).
//! Frames themselves are never retained.
//!
//! `finish()` produces exactly what the batch analyzer produces; the
//! equivalence is tested property-style against
//! [`crate::analyzer::VideoAnalyzer`].

use crate::analyzer::{AnalyzerConfig, VideoAnalysis};
use crate::error::Result;
use crate::features::{FeatureExtractor, FrameFeatures};
use crate::frame::FrameBuf;
use crate::parallel::extract_features_parallel;
use crate::pixel::Rgb;
use crate::sbd::{CameraTrackingDetector, SbdStats, Segmentation, StageDecision};
use crate::scenetree::build_scene_tree_with_config;
use crate::shot::Shot;
use crate::variance::ShotFeature;

/// What [`StreamingAnalyzer::push`] reports about the newest frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// First frame of the stream.
    First,
    /// Same shot as the previous frame (with the deciding stage).
    Same(StageDecision),
    /// This frame starts a new shot.
    Boundary,
}

/// Frame-at-a-time analyzer.
#[derive(Debug)]
pub struct StreamingAnalyzer {
    config: AnalyzerConfig,
    detector: CameraTrackingDetector,
    extractor: Option<FeatureExtractor>,
    dims: Option<(u32, u32)>,
    prev: Option<FrameFeatures>,
    signs_ba: Vec<Rgb>,
    signs_oa: Vec<Rgb>,
    decisions: Vec<StageDecision>,
    stats: SbdStats,
    boundaries: Vec<usize>,
    shot_start: usize,
    shots: Vec<Shot>,
}

impl Default for StreamingAnalyzer {
    fn default() -> Self {
        Self::new(AnalyzerConfig::default())
    }
}

impl StreamingAnalyzer {
    /// Analyzer with the given configuration.
    pub fn new(config: AnalyzerConfig) -> Self {
        StreamingAnalyzer {
            detector: CameraTrackingDetector::with_config(config.sbd),
            config,
            extractor: None,
            dims: None,
            prev: None,
            signs_ba: Vec::new(),
            signs_oa: Vec::new(),
            decisions: Vec::new(),
            stats: SbdStats::default(),
            boundaries: Vec::new(),
            shot_start: 0,
            shots: Vec::new(),
        }
    }

    /// Frames consumed so far.
    pub fn frame_count(&self) -> usize {
        self.signs_ba.len()
    }

    /// Boundaries confirmed so far (final: streaming decisions never
    /// change retroactively).
    pub fn boundaries(&self) -> &[usize] {
        &self.boundaries
    }

    /// Consume the next frame. All frames must share the first frame's
    /// dimensions; a mismatched frame is rejected without being consumed.
    pub fn push(&mut self, frame: &FrameBuf) -> Result<PushOutcome> {
        self.check_dims(frame, 0)?;
        self.ensure_extractor(frame)?;
        let features = self
            .extractor
            .as_ref()
            .expect("created above")
            .extract(frame)?;
        Ok(self.push_features(features))
    }

    /// Consume a batch of frames: features are extracted up front (in
    /// parallel, per the config's [`crate::parallel::Parallelism`]), then
    /// fed through the sequential cascade in order. Equivalent to calling
    /// [`StreamingAnalyzer::push`] once per frame, only faster.
    ///
    /// On error nothing is consumed: the cascade only ever sees a batch
    /// whose every frame extracted successfully, mirroring the batch
    /// analyzer's all-or-nothing extraction.
    pub fn push_frames(&mut self, frames: &[FrameBuf]) -> Result<Vec<PushOutcome>> {
        let Some(first) = frames.first() else {
            return Ok(Vec::new());
        };
        self.check_dims(first, 0)?;
        self.ensure_extractor(first)?;
        for (i, frame) in frames.iter().enumerate().skip(1) {
            self.check_dims(frame, i)?;
        }
        let extractor = self.extractor.as_ref().expect("created above");
        let threads = self.config.parallelism.effective_threads();
        let features = extract_features_parallel(extractor, frames, threads)?;
        Ok(features
            .into_iter()
            .map(|f| self.push_features(f))
            .collect())
    }

    fn ensure_extractor(&mut self, frame: &FrameBuf) -> Result<()> {
        if self.extractor.is_none() {
            let (w, h) = frame.dims();
            self.extractor = Some(FeatureExtractor::new(w, h)?);
            self.dims = Some((w, h));
        }
        Ok(())
    }

    /// All frames of a stream must share dimensions, like frames of a
    /// [`crate::frame::Video`]; a stray frame is rejected without being
    /// consumed.
    fn check_dims(&self, frame: &FrameBuf, index: usize) -> Result<()> {
        match self.dims {
            Some(first) if frame.dims() != first => {
                Err(crate::error::CoreError::InconsistentDimensions {
                    first,
                    other: frame.dims(),
                    frame: self.frame_count() + index,
                })
            }
            _ => Ok(()),
        }
    }

    /// Advance the cascade with one frame's already-extracted features.
    fn push_features(&mut self, features: FrameFeatures) -> PushOutcome {
        let outcome = match &self.prev {
            None => PushOutcome::First,
            Some(prev) => {
                let d = self.detector.decide_pair(prev, &features);
                self.stats.pairs += 1;
                match d {
                    StageDecision::SameBySign => self.stats.stage1_same += 1,
                    StageDecision::SameBySignature => self.stats.stage2_same += 1,
                    StageDecision::SameByTracking => self.stats.stage3_same += 1,
                    StageDecision::Boundary => self.stats.boundaries += 1,
                }
                self.decisions.push(d);
                if d == StageDecision::Boundary {
                    let boundary_frame = self.signs_ba.len();
                    self.shots.push(Shot {
                        id: self.shots.len(),
                        start: self.shot_start,
                        end: boundary_frame - 1,
                    });
                    self.boundaries.push(boundary_frame);
                    self.shot_start = boundary_frame;
                    PushOutcome::Boundary
                } else {
                    PushOutcome::Same(d)
                }
            }
        };
        self.signs_ba.push(features.sign_ba);
        self.signs_oa.push(features.sign_oa);
        self.prev = Some(features);
        outcome
    }

    /// Close the stream: finalize the last shot, build the scene tree and
    /// per-shot features. Returns `None` if no frame was ever pushed.
    pub fn finish(mut self) -> Option<VideoAnalysis> {
        if self.signs_ba.is_empty() {
            return None;
        }
        self.shots.push(Shot {
            id: self.shots.len(),
            start: self.shot_start,
            end: self.signs_ba.len() - 1,
        });
        let segmentation = Segmentation {
            shots: self.shots,
            boundaries: self.boundaries,
            decisions: self.decisions,
            stats: self.stats,
        };
        let scene_tree = build_scene_tree_with_config(
            &segmentation.shots,
            &self.signs_ba,
            self.config.scene_tree,
        );
        let features = segmentation
            .shots
            .iter()
            .map(|s| {
                ShotFeature::from_signs(
                    &self.signs_ba[s.start..=s.end],
                    &self.signs_oa[s.start..=s.end],
                )
            })
            .collect();
        Some(VideoAnalysis {
            signs_ba: self.signs_ba,
            signs_oa: self.signs_oa,
            segmentation,
            scene_tree,
            features,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::VideoAnalyzer;
    use crate::frame::Video;

    fn frames_with_cuts() -> Vec<FrameBuf> {
        let mut frames = Vec::new();
        for (base, n) in [(30u8, 6usize), (140, 5), (220, 7)] {
            for i in 0..n {
                frames.push(FrameBuf::from_fn(80, 60, |x, y| {
                    Rgb::new(
                        base.saturating_add(((x + y) % 12) as u8),
                        base / 2,
                        255 - base,
                    )
                    .lerp(Rgb::gray(base), (i % 2) as f64 * 0.02)
                }));
            }
        }
        frames
    }

    #[test]
    fn streaming_equals_batch() {
        let frames = frames_with_cuts();
        let video = Video::new(frames.clone(), 3.0).unwrap();
        let batch = VideoAnalyzer::new().analyze(&video).unwrap();

        let mut s = StreamingAnalyzer::default();
        for f in &frames {
            s.push(f).unwrap();
        }
        let streamed = s.finish().unwrap();
        assert_eq!(streamed, batch);
    }

    #[test]
    fn push_outcomes_report_boundaries_live() {
        let frames = frames_with_cuts();
        let mut s = StreamingAnalyzer::default();
        let mut outcomes = Vec::new();
        for f in &frames {
            outcomes.push(s.push(f).unwrap());
        }
        assert_eq!(outcomes[0], PushOutcome::First);
        let live_boundaries: Vec<usize> = outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| **o == PushOutcome::Boundary)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(live_boundaries, vec![6, 11]);
        assert_eq!(s.boundaries(), &[6, 11]);
        assert_eq!(s.frame_count(), frames.len());
    }

    #[test]
    fn empty_stream_yields_none() {
        assert!(StreamingAnalyzer::default().finish().is_none());
    }

    #[test]
    fn push_frames_equals_push_one_at_a_time() {
        use crate::parallel::Parallelism;
        let frames = frames_with_cuts();

        let mut serial = StreamingAnalyzer::default();
        let mut serial_outcomes = Vec::new();
        for f in &frames {
            serial_outcomes.push(serial.push(f).unwrap());
        }
        let serial_analysis = serial.finish().unwrap();

        for threads in [1usize, 2, 4] {
            let cfg = AnalyzerConfig {
                parallelism: Parallelism::Threads(threads),
                ..AnalyzerConfig::default()
            };
            // Feed in uneven batches (including an empty one) to exercise
            // batch boundaries crossing shot boundaries.
            let mut batched = StreamingAnalyzer::new(cfg);
            let mut outcomes = Vec::new();
            let mut rest = frames.as_slice();
            for take in [1usize, 0, 5, 3, usize::MAX] {
                let k = take.min(rest.len());
                let (chunk, tail) = rest.split_at(k);
                outcomes.extend(batched.push_frames(chunk).unwrap());
                rest = tail;
            }
            assert_eq!(outcomes, serial_outcomes, "threads={threads}");
            assert_eq!(
                batched.finish().unwrap(),
                serial_analysis,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn push_frames_on_empty_batch_is_a_no_op() {
        let mut s = StreamingAnalyzer::default();
        assert!(s.push_frames(&[]).unwrap().is_empty());
        assert_eq!(s.frame_count(), 0);
        assert!(s.finish().is_none());
    }

    #[test]
    fn push_frames_rejects_tiny_frames_without_consuming() {
        let mut s = StreamingAnalyzer::default();
        assert!(s.push_frames(&vec![FrameBuf::black(8, 8); 3]).is_err());
        assert_eq!(s.frame_count(), 0);
    }

    #[test]
    fn single_frame_stream() {
        let mut s = StreamingAnalyzer::default();
        s.push(&FrameBuf::filled(80, 60, Rgb::gray(77))).unwrap();
        let a = s.finish().unwrap();
        assert_eq!(a.shots().len(), 1);
        assert_eq!(a.frame_count(), 1);
        a.scene_tree.check_invariants().unwrap();
    }

    #[test]
    fn tiny_frames_rejected_on_first_push() {
        let mut s = StreamingAnalyzer::default();
        assert!(s.push(&FrameBuf::black(8, 8)).is_err());
    }

    #[test]
    fn streaming_equals_batch_on_synthetic_genre_clip() {
        // A richer equivalence check via the synth substrate is in the
        // end-to-end integration tests; here a deterministic textured clip.
        let frames: Vec<FrameBuf> = (0..20)
            .map(|t| {
                let world = t / 7; // cuts at 7 and 14
                FrameBuf::from_fn(80, 60, move |x, y| {
                    Rgb::new(
                        ((x * (world + 2) as u32) % 200) as u8,
                        ((y * (world + 3) as u32) % 180) as u8,
                        (40 * world) as u8,
                    )
                })
            })
            .collect();
        let video = Video::new(frames.clone(), 3.0).unwrap();
        let batch = VideoAnalyzer::new().analyze(&video).unwrap();
        let mut s = StreamingAnalyzer::default();
        for f in &frames {
            s.push(f).unwrap();
        }
        assert_eq!(s.finish().unwrap(), batch);
    }
}
