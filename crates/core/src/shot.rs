//! Shots and representative-frame selection (§2, §3.1, Table 2).
//!
//! A *shot* is "a collection of frames recorded from a single camera
//! operation". Each shot's representative frame is the "most repetitive"
//! frame: the frame starting the longest run of identical `Sign^BA` values,
//! with ties broken by the temporally earliest occurrence (Table 2's worked
//! example: two runs of length 6, frames 1–6 and 15–20 — frame 1 wins).

use crate::pixel::Rgb;
use serde::{Deserialize, Serialize};

/// A detected shot: a half-open range of frame indices is deliberately *not*
/// used — the paper numbers shots by inclusive start/end frames (Table 3),
/// so we do too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Shot {
    /// Zero-based shot id (`shot#1` of the paper is id 0).
    pub id: usize,
    /// First frame index (inclusive).
    pub start: usize,
    /// Last frame index (inclusive).
    pub end: usize,
}

impl Shot {
    /// Number of frames in the shot (`|A|` in §3.1).
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start + 1
    }

    /// Shots always contain at least one frame.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterate over the frame indices of this shot.
    pub fn frames(&self) -> impl Iterator<Item = usize> {
        self.start..=self.end
    }

    /// Whether a frame index belongs to this shot.
    #[inline]
    pub fn contains(&self, frame: usize) -> bool {
        (self.start..=self.end).contains(&frame)
    }
}

/// The longest run of identical consecutive values in `signs`, returned as
/// `(start_offset, run_length)`. Ties are broken toward the earliest run.
/// Returns `(0, 0)` for an empty slice.
pub fn longest_sign_run(signs: &[Rgb]) -> (usize, usize) {
    if signs.is_empty() {
        return (0, 0);
    }
    let mut best_start = 0usize;
    let mut best_len = 1usize;
    let mut cur_start = 0usize;
    let mut cur_len = 1usize;
    for i in 1..signs.len() {
        if signs[i] == signs[i - 1] {
            cur_len += 1;
        } else {
            cur_start = i;
            cur_len = 1;
        }
        if cur_len > best_len {
            best_len = cur_len;
            best_start = cur_start;
        }
    }
    (best_start, best_len)
}

/// All maximal runs of identical consecutive signs, as
/// `(start_offset, run_length)` in temporal order.
pub fn sign_runs(signs: &[Rgb]) -> Vec<(usize, usize)> {
    let mut runs = Vec::new();
    let mut i = 0usize;
    while i < signs.len() {
        let mut j = i + 1;
        while j < signs.len() && signs[j] == signs[i] {
            j += 1;
        }
        runs.push((i, j - i));
        i = j;
    }
    runs
}

/// Representative frame for a shot, given the shot's per-frame `Sign^BA`
/// values: the first frame of the longest run (earliest on ties), as an
/// offset *within the shot*.
pub fn representative_frame_offset(signs: &[Rgb]) -> usize {
    longest_sign_run(signs).0
}

/// The paper's `g(s)` extension (§3.1): for scenes with many shots, return
/// up to `k` representative-frame offsets, taken from the `k` longest runs
/// (ties toward earlier runs), in temporal order.
pub fn top_representative_offsets(signs: &[Rgb], k: usize) -> Vec<usize> {
    let mut runs = sign_runs(signs);
    // Sort by run length descending, then start ascending; take k; restore
    // temporal order.
    runs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut top: Vec<usize> = runs.into_iter().take(k).map(|(s, _)| s).collect();
    top.sort_unstable();
    top
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The exact Table 2 worked example: 20 frames, runs of 6 / 2 / 4 / 2 / 6;
    /// frame 1 (offset 0) must be chosen over the equally long run at
    /// frames 15–20 (offset 14).
    #[test]
    fn table2_representative_frame() {
        let mut signs = Vec::new();
        signs.extend(std::iter::repeat(Rgb::new(219, 152, 142)).take(6)); // frames 1-6
        signs.extend(std::iter::repeat(Rgb::new(226, 164, 172)).take(2)); // 7-8
        signs.extend(std::iter::repeat(Rgb::new(213, 149, 134)).take(4)); // 9-12
        signs.extend(std::iter::repeat(Rgb::new(200, 137, 123)).take(2)); // 13-14
        signs.extend(std::iter::repeat(Rgb::new(228, 160, 149)).take(6)); // 15-20
        assert_eq!(signs.len(), 20);
        let (start, len) = longest_sign_run(&signs);
        assert_eq!(len, 6);
        assert_eq!(start, 0, "ties must break toward the earliest frame");
        assert_eq!(representative_frame_offset(&signs), 0);
    }

    #[test]
    fn shot_len_inclusive() {
        // Table 3's shot #1: frames 1..=75 -> 75 frames.
        let s = Shot {
            id: 0,
            start: 0,
            end: 74,
        };
        assert_eq!(s.len(), 75);
        assert!(s.contains(0));
        assert!(s.contains(74));
        assert!(!s.contains(75));
        assert_eq!(s.frames().count(), 75);
    }

    #[test]
    fn longest_run_simple_cases() {
        assert_eq!(longest_sign_run(&[]), (0, 0));
        assert_eq!(longest_sign_run(&[Rgb::gray(1)]), (0, 1));
        let signs = [
            Rgb::gray(1),
            Rgb::gray(2),
            Rgb::gray(2),
            Rgb::gray(2),
            Rgb::gray(3),
        ];
        assert_eq!(longest_sign_run(&signs), (1, 3));
    }

    #[test]
    fn later_longer_run_wins() {
        let signs = [
            Rgb::gray(1),
            Rgb::gray(1),
            Rgb::gray(9),
            Rgb::gray(4),
            Rgb::gray(4),
            Rgb::gray(4),
        ];
        assert_eq!(longest_sign_run(&signs), (3, 3));
    }

    #[test]
    fn sign_runs_partition_the_slice() {
        let signs = [
            Rgb::gray(1),
            Rgb::gray(1),
            Rgb::gray(2),
            Rgb::gray(3),
            Rgb::gray(3),
        ];
        assert_eq!(sign_runs(&signs), vec![(0, 2), (2, 1), (3, 2)]);
    }

    #[test]
    fn top_offsets_in_temporal_order() {
        let signs = [
            Rgb::gray(5), // run of 1
            Rgb::gray(7),
            Rgb::gray(7),
            Rgb::gray(7), // run of 3 at offset 1
            Rgb::gray(2),
            Rgb::gray(2), // run of 2 at offset 4
        ];
        assert_eq!(top_representative_offsets(&signs, 2), vec![1, 4]);
        assert_eq!(top_representative_offsets(&signs, 10), vec![0, 1, 4]);
        assert_eq!(top_representative_offsets(&signs, 0), Vec::<usize>::new());
    }

    proptest! {
        #[test]
        fn prop_longest_run_is_maximal(values in prop::collection::vec(0u8..4, 1..64)) {
            let signs: Vec<Rgb> = values.iter().map(|&v| Rgb::gray(v)).collect();
            let (start, len) = longest_sign_run(&signs);
            // The claimed run is really a run...
            prop_assert!(signs[start..start + len].windows(2).all(|w| w[0] == w[1]));
            // ...and no run from sign_runs is longer, nor equal-and-earlier.
            for (s, l) in sign_runs(&signs) {
                prop_assert!(l < len || (l == len && s >= start));
            }
        }

        #[test]
        fn prop_runs_cover_everything(values in prop::collection::vec(0u8..3, 0..64)) {
            let signs: Vec<Rgb> = values.iter().map(|&v| Rgb::gray(v)).collect();
            let runs = sign_runs(&signs);
            let total: usize = runs.iter().map(|&(_, l)| l).sum();
            prop_assert_eq!(total, signs.len());
            // Runs are contiguous and ordered.
            let mut expected_start = 0;
            for (s, l) in runs {
                prop_assert_eq!(s, expected_start);
                expected_start += l;
            }
        }
    }
}
