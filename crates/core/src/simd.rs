//! SIMD capability detection and the [`SimdLevel`] configuration knob.
//!
//! Per-frame extraction (TBA/FOA crop + pyramid reduction, §2.1–§2.2) is
//! byte-wise arithmetic over `u8` lanes — ideal SIMD material. This module
//! decides *which* instruction set the kernels in [`crate::kernels`] run
//! with:
//!
//! * [`SimdLevel`] is the user-facing knob, threaded through
//!   [`crate::AnalyzerConfig`] exactly like [`crate::Parallelism`]. The
//!   default, `Auto`, picks the best instruction set the host supports at
//!   runtime; `Scalar` forces the portable fallback; `Forced(isa)` demands
//!   one specific ISA and fails loudly when the host lacks it (it exists so
//!   tests and CI can pin a level — silent fallback would defeat a
//!   correctness matrix).
//! * [`ResolvedIsa`] is an opaque *witness* that the chosen instruction set
//!   is actually available: the only ways to obtain one are
//!   [`SimdLevel::try_resolve`] (which runs feature detection) and the
//!   always-valid [`ResolvedIsa::SCALAR`]. Kernel dispatch takes a
//!   `ResolvedIsa`, which is what lets the dispatch functions stay *safe*
//!   to call: the witness proves the `unsafe` target-feature code behind it
//!   cannot execute unsupported instructions.
//!
//! Every level computes **bit-identical** results — the knob only selects
//! how many lanes each instruction touches, never the arithmetic (see
//! `DESIGN.md` §14). The `VDB_SIMD` environment variable overrides what
//! `Auto` resolves to (`auto`/`scalar`/`sse2`/`avx2`/`neon`), which is how
//! the CI matrix re-runs the entire unmodified test suite under each level.

use crate::error::{CoreError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;
use std::sync::OnceLock;

/// A concrete SIMD instruction set the extraction kernels have an
/// implementation for.
///
/// Used as the payload of [`SimdLevel::Forced`]. Naming an ISA does not
/// imply the host supports it — check [`SimdIsa::available`] or resolve
/// through [`SimdLevel::try_resolve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimdIsa {
    /// SSE2: 16-byte lanes; baseline on every `x86_64` CPU.
    Sse2,
    /// AVX2: 32-byte lanes; runtime-detected on `x86_64`.
    Avx2,
    /// NEON: 16-byte lanes; baseline on every `aarch64` CPU.
    Neon,
}

impl SimdIsa {
    /// Every ISA the kernels know about, in increasing preference order
    /// within each architecture.
    pub const ALL: [SimdIsa; 3] = [SimdIsa::Sse2, SimdIsa::Avx2, SimdIsa::Neon];

    /// Whether the running host supports this instruction set.
    pub fn available(self) -> bool {
        self.resolved().is_some()
    }

    /// Lowercase name (`"sse2"`, `"avx2"`, `"neon"`).
    pub fn name(self) -> &'static str {
        match self {
            SimdIsa::Sse2 => "sse2",
            SimdIsa::Avx2 => "avx2",
            SimdIsa::Neon => "neon",
        }
    }

    /// Detection: turn the ISA name into a witness, if the host has it.
    fn resolved(self) -> Option<ResolvedIsa> {
        match self {
            #[cfg(target_arch = "x86_64")]
            SimdIsa::Sse2 => {
                std::arch::is_x86_feature_detected!("sse2").then_some(ResolvedIsa(Kind::Sse2))
            }
            #[cfg(target_arch = "x86_64")]
            SimdIsa::Avx2 => {
                std::arch::is_x86_feature_detected!("avx2").then_some(ResolvedIsa(Kind::Avx2))
            }
            #[cfg(target_arch = "aarch64")]
            SimdIsa::Neon => {
                std::arch::is_aarch64_feature_detected!("neon").then_some(ResolvedIsa(Kind::Neon))
            }
            #[allow(unreachable_patterns)]
            _ => None,
        }
    }
}

impl fmt::Display for SimdIsa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How the extraction kernels pick their instruction set.
///
/// Threaded through [`crate::AnalyzerConfig`] like
/// [`crate::Parallelism`]; every setting yields bit-identical features, the
/// knob only changes wall-clock time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimdLevel {
    /// Use the best instruction set detected at runtime (the default).
    /// Overridable via the `VDB_SIMD` environment variable.
    #[default]
    Auto,
    /// Portable scalar code only.
    Scalar,
    /// Demand one specific ISA; resolving fails if the host lacks it.
    /// For tests/CI — a silent fallback would defeat a correctness matrix.
    Forced(SimdIsa),
}

impl SimdLevel {
    /// Resolve to a concrete, host-supported instruction set.
    ///
    /// # Errors
    /// [`CoreError::SimdUnavailable`] when a [`SimdLevel::Forced`] ISA is
    /// not supported by the running host. `Auto` and `Scalar` never fail.
    pub fn try_resolve(self) -> Result<ResolvedIsa> {
        match self {
            SimdLevel::Auto => Ok(auto_resolved()),
            SimdLevel::Scalar => Ok(ResolvedIsa::SCALAR),
            SimdLevel::Forced(isa) => isa
                .resolved()
                .ok_or(CoreError::SimdUnavailable { isa: isa.name() }),
        }
    }

    /// [`SimdLevel::try_resolve`], panicking on an unavailable forced ISA.
    ///
    /// # Panics
    /// If a `Forced` instruction set is not available on this host.
    pub fn resolve(self) -> ResolvedIsa {
        self.try_resolve()
            .unwrap_or_else(|e| panic!("cannot resolve SIMD level {self}: {e}"))
    }

    /// Every level that resolves on this host: `Scalar` plus `Forced(isa)`
    /// for each available ISA. The sweep the equivalence suites and the CI
    /// matrix iterate over (note `Auto` is omitted — it duplicates one of
    /// the returned levels).
    pub fn all_available() -> Vec<SimdLevel> {
        let mut levels = vec![SimdLevel::Scalar];
        levels.extend(
            SimdIsa::ALL
                .iter()
                .copied()
                .filter(|isa| isa.available())
                .map(SimdLevel::Forced),
        );
        levels
    }
}

impl fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimdLevel::Auto => f.write_str("auto"),
            SimdLevel::Scalar => f.write_str("scalar"),
            SimdLevel::Forced(isa) => f.write_str(isa.name()),
        }
    }
}

impl FromStr for SimdLevel {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Ok(SimdLevel::Auto),
            "scalar" => Ok(SimdLevel::Scalar),
            "sse2" => Ok(SimdLevel::Forced(SimdIsa::Sse2)),
            "avx2" => Ok(SimdLevel::Forced(SimdIsa::Avx2)),
            "neon" => Ok(SimdLevel::Forced(SimdIsa::Neon)),
            other => Err(format!(
                "unknown SIMD level `{other}` (expected auto, scalar, sse2, avx2, or neon)"
            )),
        }
    }
}

/// The private dispatch tag. Non-scalar variants only exist on the
/// architecture that can run them, so a [`ResolvedIsa`] can never name an
/// instruction set the binary was not compiled with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kind {
    Scalar,
    #[cfg(target_arch = "x86_64")]
    Sse2,
    #[cfg(target_arch = "x86_64")]
    Avx2,
    #[cfg(target_arch = "aarch64")]
    Neon,
}

/// A proof that one instruction set is available on the running host.
///
/// The field is private on purpose: outside this module the only sources
/// are [`ResolvedIsa::SCALAR`] and [`SimdLevel::try_resolve`] (which runs
/// feature detection). That invariant is what makes the kernel dispatch in
/// [`crate::kernels`] safe to expose — the `unsafe` target-feature bodies
/// only ever run behind a witness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedIsa(pub(crate) Kind);

impl ResolvedIsa {
    /// The portable scalar fallback, valid on every host.
    pub const SCALAR: ResolvedIsa = ResolvedIsa(Kind::Scalar);

    /// The dispatch tag, for the kernel `match`es.
    #[inline]
    pub(crate) fn kind(self) -> Kind {
        self.0
    }

    /// Whether this is the scalar fallback.
    pub fn is_scalar(self) -> bool {
        self.0 == Kind::Scalar
    }

    /// Lowercase name (`"scalar"`, `"sse2"`, `"avx2"`, `"neon"`).
    pub fn name(self) -> &'static str {
        match self.0 {
            Kind::Scalar => "scalar",
            #[cfg(target_arch = "x86_64")]
            Kind::Sse2 => "sse2",
            #[cfg(target_arch = "x86_64")]
            Kind::Avx2 => "avx2",
            #[cfg(target_arch = "aarch64")]
            Kind::Neon => "neon",
        }
    }

    /// Every instruction set usable on this host, scalar first.
    pub fn available_levels() -> Vec<ResolvedIsa> {
        let mut levels = vec![ResolvedIsa::SCALAR];
        levels.extend(SimdIsa::ALL.iter().filter_map(|isa| isa.resolved()));
        levels
    }
}

impl fmt::Display for ResolvedIsa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What `SimdLevel::Auto` resolves to, computed once per process.
///
/// Consults `VDB_SIMD` first so CI can force the whole (unmodified) test
/// suite onto one level; an unsupported or unparseable override panics —
/// it is a test/CI knob, and falling back silently would let a matrix leg
/// "pass" while testing the wrong code.
fn auto_resolved() -> ResolvedIsa {
    static AUTO: OnceLock<ResolvedIsa> = OnceLock::new();
    *AUTO.get_or_init(|| match std::env::var("VDB_SIMD") {
        Err(_) => detect_best(),
        Ok(value) => {
            let level: SimdLevel = value
                .parse()
                .unwrap_or_else(|e| panic!("invalid VDB_SIMD={value}: {e}"));
            match level {
                SimdLevel::Auto => detect_best(),
                other => other
                    .try_resolve()
                    .unwrap_or_else(|e| panic!("VDB_SIMD={value} cannot run on this host: {e}")),
            }
        }
    })
}

/// Best instruction set the host supports, by lane width.
fn detect_best() -> ResolvedIsa {
    for isa in [SimdIsa::Avx2, SimdIsa::Neon, SimdIsa::Sse2] {
        if let Some(resolved) = isa.resolved() {
            return resolved;
        }
    }
    ResolvedIsa::SCALAR
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_always_resolves() {
        let isa = SimdLevel::Scalar.try_resolve().unwrap();
        assert!(isa.is_scalar());
        assert_eq!(isa.name(), "scalar");
    }

    #[test]
    fn auto_always_resolves() {
        // Whatever the host (or a VDB_SIMD override in a CI matrix leg),
        // Auto must resolve to *something* and stay stable across calls.
        let a = SimdLevel::Auto.try_resolve().unwrap();
        let b = SimdLevel::Auto.try_resolve().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn forced_available_isa_resolves_to_itself() {
        for isa in SimdIsa::ALL {
            if isa.available() {
                let resolved = SimdLevel::Forced(isa).try_resolve().unwrap();
                assert_eq!(resolved.name(), isa.name());
            } else {
                assert!(matches!(
                    SimdLevel::Forced(isa).try_resolve(),
                    Err(CoreError::SimdUnavailable { .. })
                ));
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn sse2_is_baseline_on_x86_64() {
        assert!(SimdIsa::Sse2.available());
        assert!(!SimdIsa::Neon.available());
    }

    #[test]
    fn available_levels_start_with_scalar() {
        let levels = ResolvedIsa::available_levels();
        assert_eq!(levels[0], ResolvedIsa::SCALAR);
        // Names are unique (no ISA listed twice).
        let names: Vec<&str> = levels.iter().map(|l| l.name()).collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names, dedup);
    }

    #[test]
    fn all_available_matches_availability() {
        let levels = SimdLevel::all_available();
        assert_eq!(levels[0], SimdLevel::Scalar);
        assert_eq!(
            levels.len(),
            1 + SimdIsa::ALL.iter().filter(|i| i.available()).count()
        );
        for level in levels {
            level.try_resolve().unwrap();
        }
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["auto", "scalar", "sse2", "avx2", "neon"] {
            let level: SimdLevel = s.parse().unwrap();
            assert_eq!(level.to_string(), s);
        }
        assert_eq!(
            "AVX2".parse::<SimdLevel>(),
            Ok(SimdLevel::Forced(SimdIsa::Avx2))
        );
        assert!("mmx".parse::<SimdLevel>().is_err());
    }

    #[test]
    fn simd_level_serializes() {
        for level in [
            SimdLevel::Auto,
            SimdLevel::Scalar,
            SimdLevel::Forced(SimdIsa::Avx2),
            SimdLevel::Forced(SimdIsa::Neon),
        ] {
            let s = serde_json::to_string(&level).unwrap();
            let back: SimdLevel = serde_json::from_str(&s).unwrap();
            assert_eq!(back, level);
        }
    }
}
