//! The one incremental analysis engine behind every analysis entry point.
//!
//! The paper's framework is a single conceptual pipeline — per-frame
//! TBA/FOA extraction and pyramid reduction (§2), the SBD cascade
//! (Figure 4), shot assembly, the scene tree (§3), and the variance index
//! features (§4). [`AnalysisEngine`] is its only implementation:
//!
//! ```text
//!            frames ──► feature extraction ──► SBD cascade ──► shot assembly
//!                       (parallel shards,      (sequential,     │
//!                        per-worker scratch)    decide_pair)    ▼
//!            VideoAnalysis ◄── index features ◄── scene tree ◄── shots
//! ```
//!
//! * [`crate::analyzer::VideoAnalyzer`] is a thin batch driver: one
//!   `push_frames` over the whole video, then [`AnalysisEngine::finish`];
//! * [`crate::streaming::StreamingAnalyzer`] is a stateful wrapper that
//!   forwards `push`/`push_frames`/`finish`;
//! * [`crate::parallel`] is the sharded feature-extraction front-end the
//!   engine calls — it never touches the cascade.
//!
//! Batch, streaming, and parallel results are therefore equal **by
//! construction** (they run the same code on the same features), rather
//! than by the three-way equivalence test that historically pinned three
//! separate implementations together.
//!
//! The engine owns a [`ScratchBuffers`] arena so the serial hot path
//! performs no per-frame heap allocation in extraction or pyramid
//! reduction after warm-up (see [`crate::pyramid::reduction_allocs`]); the
//! arena survives [`AnalysisEngine::finish`] and is reused across clips,
//! even clips of different dimensions.

use crate::analyzer::{AnalyzerConfig, VideoAnalysis};
use crate::error::{CoreError, Result};
use crate::features::{FeatureExtractor, FrameFeatures, ScratchBuffers};
use crate::frame::{FrameBuf, Video};
use crate::parallel::extract_features_reusing;
use crate::pixel::Rgb;
use crate::sbd::{CameraTrackingDetector, SbdStats, Segmentation, StageDecision};
use crate::scenetree::build_scene_tree_with_config;
use crate::shot::Shot;
use crate::variance::ShotFeature;
use vdb_obs::{global_tracer, Counter, Histogram, Registry, TraceContext};

/// The pipeline's handles into an observability registry: one span
/// histogram per stage and the cascade's stage-hit counters (how often
/// the cheap sign comparison vs. signature shifting vs. full tracking
/// resolved a frame pair — the paper's Figure 4 cost metric, live).
///
/// Registered by name, so every engine pointed at the same registry
/// (e.g. [`vdb_obs::global`], the default) aggregates into one set of
/// metrics; per-stage frames/s falls out as
/// `core.pipeline.frames / core.pipeline.<stage>_us`.
#[derive(Debug, Clone)]
pub struct PipelineMetrics {
    extract_us: Histogram,
    cascade_us: Histogram,
    assemble_us: Histogram,
    scenetree_us: Histogram,
    index_us: Histogram,
    frames: Counter,
    clips: Counter,
    sign_same: Counter,
    signature_same: Counter,
    tracking_same: Counter,
    boundaries: Counter,
}

impl PipelineMetrics {
    /// Get-or-register the pipeline's metrics in `registry`.
    pub fn register(registry: &Registry) -> Self {
        PipelineMetrics {
            extract_us: registry.histogram("core.pipeline.extract_us"),
            cascade_us: registry.histogram("core.pipeline.cascade_us"),
            assemble_us: registry.histogram("core.pipeline.assemble_us"),
            scenetree_us: registry.histogram("core.pipeline.scenetree_us"),
            index_us: registry.histogram("core.pipeline.index_us"),
            frames: registry.counter("core.pipeline.frames"),
            clips: registry.counter("core.pipeline.clips"),
            sign_same: registry.counter("core.cascade.sign_same"),
            signature_same: registry.counter("core.cascade.signature_same"),
            tracking_same: registry.counter("core.cascade.tracking_same"),
            boundaries: registry.counter("core.cascade.boundaries"),
        }
    }

    /// Fold one clip's cascade statistics into the stage-hit counters
    /// (five counter adds per clip — the per-pair hot loop stays
    /// untouched).
    fn record_cascade(&self, stats: &SbdStats) {
        self.sign_same.add(stats.stage1_same as u64);
        self.signature_same.add(stats.stage2_same as u64);
        self.tracking_same.add(stats.stage3_same as u64);
        self.boundaries.add(stats.boundaries as u64);
    }
}

/// What the engine reports about the newest frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// First frame of the stream.
    First,
    /// Same shot as the previous frame (with the deciding stage).
    Same(StageDecision),
    /// This frame starts a new shot.
    Boundary,
}

/// The cascade bookkeeping: per-pair decisions, per-stage statistics,
/// boundary list, and incremental shot assembly.
///
/// This struct is the *only* place the repo turns [`StageDecision`]s into
/// shots — batch, streaming, parallel, and the slice-level
/// [`segment_features`] all funnel through [`CascadeState::record`].
#[derive(Debug, Clone, Default)]
struct CascadeState {
    signs_ba: Vec<Rgb>,
    signs_oa: Vec<Rgb>,
    decisions: Vec<StageDecision>,
    stats: SbdStats,
    boundaries: Vec<usize>,
    shot_start: usize,
    shots: Vec<Shot>,
    prev: Option<FrameFeatures>,
}

impl CascadeState {
    /// Fold one pair decision into decisions/stats/boundaries/shots.
    /// `boundary_frame` is the index of the pair's *second* frame — the
    /// frame a new shot would start at.
    fn record(&mut self, d: StageDecision, boundary_frame: usize) -> PushOutcome {
        self.stats.pairs += 1;
        match d {
            StageDecision::SameBySign => self.stats.stage1_same += 1,
            StageDecision::SameBySignature => self.stats.stage2_same += 1,
            StageDecision::SameByTracking => self.stats.stage3_same += 1,
            StageDecision::Boundary => self.stats.boundaries += 1,
        }
        self.decisions.push(d);
        if d == StageDecision::Boundary {
            self.shots.push(Shot {
                id: self.shots.len(),
                start: self.shot_start,
                end: boundary_frame - 1,
            });
            self.boundaries.push(boundary_frame);
            self.shot_start = boundary_frame;
            PushOutcome::Boundary
        } else {
            PushOutcome::Same(d)
        }
    }

    /// Advance by one frame's features (the streaming driver).
    fn push(&mut self, detector: &CameraTrackingDetector, features: FrameFeatures) -> PushOutcome {
        let outcome = match &self.prev {
            None => PushOutcome::First,
            Some(prev) => {
                let d = detector.decide_pair(prev, &features);
                self.record(d, self.signs_ba.len())
            }
        };
        self.signs_ba.push(features.sign_ba);
        self.signs_oa.push(features.sign_oa);
        self.prev = Some(features);
        outcome
    }

    /// Close the last shot and emit the [`Segmentation`]. `frames` is the
    /// total frame count (zero yields an empty segmentation).
    fn into_segmentation(mut self, frames: usize) -> Segmentation {
        if frames > 0 {
            self.shots.push(Shot {
                id: self.shots.len(),
                start: self.shot_start,
                end: frames - 1,
            });
        }
        Segmentation {
            shots: self.shots,
            boundaries: self.boundaries,
            decisions: self.decisions,
            stats: self.stats,
        }
    }
}

/// Segment an already-extracted feature sequence into shots.
///
/// The slice-level driver over the same cascade bookkeeping the engine
/// uses; [`CameraTrackingDetector::segment_features`] delegates here.
pub fn segment_features(
    detector: &CameraTrackingDetector,
    features: &[FrameFeatures],
) -> Segmentation {
    let mut state = CascadeState::default();
    for (i, pair) in features.windows(2).enumerate() {
        state.record(detector.decide_pair(&pair[0], &pair[1]), i + 1);
    }
    state.into_segmentation(features.len())
}

/// The canonical Steps 1–3 pipeline, consumed incrementally.
///
/// Frames go in (`push_frame` / `push_frames` / `analyze`); a
/// [`VideoAnalysis`] comes out of [`AnalysisEngine::finish`]. Between the
/// two the engine keeps only O(signs) state — the previous frame's
/// features plus the per-frame sign history the scene tree and variance
/// features need; frames themselves are never retained.
///
/// `finish` resets the per-clip state, so one engine can be reused for
/// clip after clip (as [`crate::analyzer::VideoAnalyzer`] and the store's
/// ingest paths do), amortizing its scratch arena across the whole
/// workload.
#[derive(Debug)]
pub struct AnalysisEngine {
    config: AnalyzerConfig,
    detector: CameraTrackingDetector,
    extractor: Option<FeatureExtractor>,
    dims: Option<(u32, u32)>,
    scratch: ScratchBuffers,
    state: CascadeState,
    obs: Option<PipelineMetrics>,
}

impl Default for AnalysisEngine {
    fn default() -> Self {
        Self::new(AnalyzerConfig::default())
    }
}

impl AnalysisEngine {
    /// Engine with the given configuration, instrumented into the
    /// process-wide [`vdb_obs::global`] registry.
    pub fn new(config: AnalyzerConfig) -> Self {
        Self::with_registry(config, vdb_obs::global())
    }

    /// Engine instrumented into a specific registry (tests and benchmarks
    /// use a private one for count-exact isolation).
    pub fn with_registry(config: AnalyzerConfig, registry: &Registry) -> Self {
        Self::build(config, Some(PipelineMetrics::register(registry)))
    }

    /// Engine with no observability at all — not even the disabled-check
    /// loads. The baseline the workspace's overhead test measures
    /// instrumentation against; production paths should prefer
    /// [`AnalysisEngine::new`] with a disabled registry instead.
    pub fn without_observability(config: AnalyzerConfig) -> Self {
        Self::build(config, None)
    }

    fn build(config: AnalyzerConfig, obs: Option<PipelineMetrics>) -> Self {
        AnalysisEngine {
            detector: CameraTrackingDetector::with_config(config.sbd),
            config,
            extractor: None,
            dims: None,
            scratch: ScratchBuffers::default(),
            state: CascadeState::default(),
            obs,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &AnalyzerConfig {
        &self.config
    }

    /// Replace the configuration. Applies to frames pushed from now on;
    /// call between clips (typically right after [`AnalysisEngine::finish`])
    /// so one clip is analyzed under one set of thresholds.
    pub fn set_config(&mut self, config: AnalyzerConfig) {
        self.detector = CameraTrackingDetector::with_config(config.sbd);
        self.config = config;
    }

    /// Frames consumed since the last `finish`.
    pub fn frame_count(&self) -> usize {
        self.state.signs_ba.len()
    }

    /// Boundaries confirmed so far in the current clip (final: streaming
    /// decisions never change retroactively).
    pub fn boundaries(&self) -> &[usize] {
        &self.state.boundaries
    }

    /// Dimensions locked by the clip's first frame (`None` before any
    /// frame has been pushed, and again after `finish`).
    pub fn dims(&self) -> Option<(u32, u32)> {
        self.dims
    }

    /// Consume the next frame. All frames of one clip must share the first
    /// frame's dimensions; a mismatched frame is rejected without being
    /// consumed.
    pub fn push_frame(&mut self, frame: &FrameBuf) -> Result<PushOutcome> {
        self.check_dims(frame, 0)?;
        self.ensure_extractor(frame)?;
        let features = {
            let _span = self.obs.as_ref().map(|o| o.extract_us.start());
            self.extractor
                .as_ref()
                .expect("created above")
                .extract_with(frame, &mut self.scratch)?
        };
        if let Some(obs) = &self.obs {
            obs.frames.incr();
        }
        let _span = self.obs.as_ref().map(|o| o.cascade_us.start());
        Ok(self.state.push(&self.detector, features))
    }

    /// Consume a batch of frames: features are extracted up front (sharded
    /// per the config's [`crate::parallel::Parallelism`]), then fed through
    /// the sequential cascade in order. Equivalent to calling
    /// [`AnalysisEngine::push_frame`] once per frame, only faster.
    ///
    /// On error nothing is consumed: the cascade only ever sees a batch
    /// whose every frame extracted successfully.
    pub fn push_frames(&mut self, frames: &[FrameBuf]) -> Result<Vec<PushOutcome>> {
        self.push_frames_traced(frames, &TraceContext::disabled())
    }

    /// [`Self::push_frames`] with `core.pipeline.extract` /
    /// `core.pipeline.cascade` trace spans opened under `ctx` (inert —
    /// one branch per stage — when `ctx` is unsampled).
    pub fn push_frames_traced(
        &mut self,
        frames: &[FrameBuf],
        ctx: &TraceContext,
    ) -> Result<Vec<PushOutcome>> {
        let Some(first) = frames.first() else {
            return Ok(Vec::new());
        };
        self.check_dims(first, 0)?;
        self.ensure_extractor(first)?;
        for (i, frame) in frames.iter().enumerate().skip(1) {
            self.check_dims(frame, i)?;
        }
        let extractor = self.extractor.as_ref().expect("created above");
        let threads = self.config.parallelism.effective_threads();
        let tracer = global_tracer();
        let features = {
            let mut tspan = tracer.span(ctx, "core.pipeline.extract");
            if tspan.is_recording() {
                tspan.attr("frames", frames.len());
            }
            let _span = self.obs.as_ref().map(|o| o.extract_us.start());
            extract_features_reusing(extractor, frames, threads, &mut self.scratch)?
        };
        if let Some(obs) = &self.obs {
            obs.frames.add(frames.len() as u64);
        }
        let _tspan = tracer.span(ctx, "core.pipeline.cascade");
        let _span = self.obs.as_ref().map(|o| o.cascade_us.start());
        Ok(features
            .into_iter()
            .map(|f| self.state.push(&self.detector, f))
            .collect())
    }

    /// Close the clip: finalize the last shot, build the scene tree and
    /// per-shot index features. The engine is left ready for the next clip
    /// (state cleared, scratch arena retained).
    ///
    /// # Errors
    /// [`CoreError::EmptyVideo`] if no frame was ever pushed.
    pub fn finish(&mut self) -> Result<VideoAnalysis> {
        self.finish_traced(&TraceContext::disabled())
    }

    /// [`Self::finish`] with `core.pipeline.assemble` / `.scenetree` /
    /// `.index` trace spans opened under `ctx`.
    pub fn finish_traced(&mut self, ctx: &TraceContext) -> Result<VideoAnalysis> {
        if self.state.signs_ba.is_empty() {
            return Err(CoreError::EmptyVideo);
        }
        let mut state = std::mem::take(&mut self.state);
        self.extractor = None;
        self.dims = None;
        let signs_ba = std::mem::take(&mut state.signs_ba);
        let signs_oa = std::mem::take(&mut state.signs_oa);
        let frames = signs_ba.len();
        let tracer = global_tracer();
        let segmentation = {
            let _tspan = tracer.span(ctx, "core.pipeline.assemble");
            let _span = self.obs.as_ref().map(|o| o.assemble_us.start());
            state.into_segmentation(frames)
        };
        let scene_tree = {
            let _tspan = tracer.span(ctx, "core.pipeline.scenetree");
            let _span = self.obs.as_ref().map(|o| o.scenetree_us.start());
            build_scene_tree_with_config(&segmentation.shots, &signs_ba, self.config.scene_tree)
        };
        let features = {
            let mut tspan = tracer.span(ctx, "core.pipeline.index");
            if tspan.is_recording() {
                tspan.attr("shots", segmentation.shots.len());
            }
            let _span = self.obs.as_ref().map(|o| o.index_us.start());
            segmentation
                .shots
                .iter()
                .map(|s| {
                    ShotFeature::from_signs(&signs_ba[s.start..=s.end], &signs_oa[s.start..=s.end])
                })
                .collect()
        };
        if let Some(obs) = &self.obs {
            obs.clips.incr();
            obs.record_cascade(&segmentation.stats);
        }
        Ok(VideoAnalysis {
            signs_ba,
            signs_oa,
            segmentation,
            scene_tree,
            features,
        })
    }

    /// Batch driver: analyze one whole video (any state left over from an
    /// unfinished clip is discarded first).
    pub fn analyze(&mut self, video: &Video) -> Result<VideoAnalysis> {
        self.analyze_traced(video, &TraceContext::disabled())
    }

    /// [`Self::analyze`] under a `core.pipeline.analyze` span: every
    /// stage (extract → cascade → assemble → scenetree → index) becomes
    /// a child span, so one traced ingest shows where the time went.
    pub fn analyze_traced(&mut self, video: &Video, ctx: &TraceContext) -> Result<VideoAnalysis> {
        self.reset();
        let mut tspan = global_tracer().span(ctx, "core.pipeline.analyze");
        let child = tspan.context();
        self.push_frames_traced(video.frames(), &child)?;
        let analysis = self.finish_traced(&child)?;
        if tspan.is_recording() {
            tspan.attr("frames", video.len());
            tspan.attr("shots", analysis.segmentation.shots.len());
        }
        Ok(analysis)
    }

    /// Drop any in-flight clip state (scratch arena retained).
    pub fn reset(&mut self) {
        self.state = CascadeState::default();
        self.extractor = None;
        self.dims = None;
    }

    fn ensure_extractor(&mut self, frame: &FrameBuf) -> Result<()> {
        if self.extractor.is_none() {
            let (w, h) = frame.dims();
            self.extractor = Some(FeatureExtractor::with_simd(w, h, self.config.simd)?);
            self.dims = Some((w, h));
        }
        Ok(())
    }

    /// All frames of a clip must share dimensions, like frames of a
    /// [`Video`]; a stray frame is rejected without being consumed.
    fn check_dims(&self, frame: &FrameBuf, index: usize) -> Result<()> {
        match self.dims {
            Some(first) if frame.dims() != first => Err(CoreError::InconsistentDimensions {
                first,
                other: frame.dims(),
                frame: self.frame_count() + index,
            }),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pyramid::reduction_allocs;
    use proptest::prelude::*;

    fn clip(dims: (u32, u32), worlds: &[(u64, usize)]) -> Vec<FrameBuf> {
        let mut frames = Vec::new();
        for &(world, n) in worlds {
            for t in 0..n {
                frames.push(FrameBuf::from_fn(dims.0, dims.1, move |x, y| {
                    let h = (u64::from(x) * 31 + u64::from(y) * 17 + t as u64)
                        ^ world.wrapping_mul(7919);
                    Rgb::new(
                        (h % 251) as u8,
                        ((h / 7) % 241) as u8,
                        ((h / 64) % 239) as u8,
                    )
                }));
            }
        }
        frames
    }

    #[test]
    fn engine_equals_frame_at_a_time_equals_slice_segmentation() {
        let frames = clip((80, 60), &[(1, 6), (2, 5), (3, 7)]);
        let video = Video::new(frames.clone(), 3.0).unwrap();

        let mut batch_engine = AnalysisEngine::default();
        let batch = batch_engine.analyze(&video).unwrap();

        let mut incremental = AnalysisEngine::default();
        for f in &frames {
            incremental.push_frame(f).unwrap();
        }
        assert_eq!(incremental.finish().unwrap(), batch);

        let detector = CameraTrackingDetector::default();
        let features: Vec<FrameFeatures> = frames
            .iter()
            .map(|f| FeatureExtractor::new(80, 60).unwrap().extract(f).unwrap())
            .collect();
        assert_eq!(segment_features(&detector, &features), batch.segmentation);
    }

    #[test]
    fn finish_on_empty_engine_is_empty_video_error() {
        let mut engine = AnalysisEngine::default();
        assert!(matches!(engine.finish(), Err(CoreError::EmptyVideo)));
    }

    #[test]
    fn engine_resets_between_clips() {
        let mut engine = AnalysisEngine::default();
        let small = Video::new(clip((80, 60), &[(1, 5)]), 3.0).unwrap();
        let large = Video::new(clip((160, 120), &[(2, 5)]), 3.0).unwrap();
        // finish() must clear the dims lock so the next clip may differ.
        let a = engine.analyze(&small).unwrap();
        let b = engine.analyze(&large).unwrap();
        assert_eq!(a, AnalysisEngine::default().analyze(&small).unwrap());
        assert_eq!(b, AnalysisEngine::default().analyze(&large).unwrap());
        // Incremental use across clips, with finish() as the only reset.
        for f in small.frames() {
            engine.push_frame(f).unwrap();
        }
        assert_eq!(engine.finish().unwrap(), a);
        engine.push_frames(large.frames()).unwrap();
        assert_eq!(engine.finish().unwrap(), b);
    }

    #[test]
    fn mismatched_dims_rejected_mid_clip() {
        let mut engine = AnalysisEngine::default();
        engine
            .push_frame(&FrameBuf::filled(80, 60, Rgb::gray(40)))
            .unwrap();
        let err = engine.push_frame(&FrameBuf::filled(160, 120, Rgb::gray(40)));
        assert!(matches!(
            err,
            Err(CoreError::InconsistentDimensions { frame: 1, .. })
        ));
        assert_eq!(engine.frame_count(), 1, "bad frame must not be consumed");
    }

    #[test]
    fn warm_engine_batch_path_reduces_without_allocating() {
        // The acceptance criterion for the scratch arena: after the first
        // clip has warmed the buffers, an entire batch analysis performs
        // zero heap allocations inside the pyramid reductions.
        let video = Video::new(clip((160, 120), &[(1, 4), (2, 4)]), 3.0).unwrap();
        let mut engine = AnalysisEngine::default();
        engine.analyze(&video).unwrap();
        let before = reduction_allocs();
        for _ in 0..3 {
            engine.analyze(&video).unwrap();
        }
        assert_eq!(
            reduction_allocs(),
            before,
            "warm batch analysis must not allocate in the pyramid reductions"
        );
    }

    #[test]
    fn traced_analyze_records_every_stage_under_one_root() {
        let video = Video::new(clip((80, 60), &[(1, 6), (2, 5)]), 3.0).unwrap();
        let mut engine = AnalysisEngine::default();
        let plain = engine.analyze(&video).unwrap();

        let tracer = global_tracer();
        let root = tracer.trace_root_forced();
        let traced = engine.analyze_traced(&video, &root).unwrap();
        assert_eq!(traced, plain, "tracing must never change the analysis");

        let events = tracer.recorder().events_for(root.trace_id);
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        for stage in [
            "core.pipeline.extract",
            "core.pipeline.cascade",
            "core.pipeline.assemble",
            "core.pipeline.scenetree",
            "core.pipeline.index",
            "core.pipeline.analyze",
        ] {
            assert!(names.contains(&stage), "missing span {stage} in {names:?}");
        }
        // Stage spans are children of the analyze span.
        let analyze = events
            .iter()
            .find(|e| e.name == "core.pipeline.analyze")
            .unwrap();
        assert_eq!(analyze.parent_id, 0);
        assert!(analyze.attrs.contains("frames=11"));
        for e in events.iter().filter(|e| e.name != "core.pipeline.analyze") {
            assert_eq!(e.parent_id, analyze.span_id, "{} misparented", e.name);
        }

        // An unsampled context records nothing.
        let before = tracer.recorder().total_recorded();
        engine
            .analyze_traced(&video, &TraceContext::disabled())
            .unwrap();
        assert_eq!(tracer.recorder().total_recorded(), before);
    }

    #[test]
    fn instrumentation_observes_without_perturbing() {
        let frames = clip((80, 60), &[(1, 6), (2, 5), (3, 7)]);
        let video = Video::new(frames, 3.0).unwrap();

        let registry = Registry::new();
        let mut instrumented = AnalysisEngine::with_registry(AnalyzerConfig::default(), &registry);
        let mut bare = AnalysisEngine::without_observability(AnalyzerConfig::default());
        let a = instrumented.analyze(&video).unwrap();
        let b = bare.analyze(&video).unwrap();
        assert_eq!(a, b, "metrics must never change the analysis");

        // The registry saw exactly one clip's worth of work, and the
        // stage-hit counters are the segmentation's own stats.
        let snap = registry.snapshot();
        assert_eq!(snap.counter("core.pipeline.clips"), Some(1));
        assert_eq!(snap.counter("core.pipeline.frames"), Some(18));
        let stats = &a.segmentation.stats;
        assert_eq!(
            snap.counter("core.cascade.sign_same"),
            Some(stats.stage1_same as u64)
        );
        assert_eq!(
            snap.counter("core.cascade.signature_same"),
            Some(stats.stage2_same as u64)
        );
        assert_eq!(
            snap.counter("core.cascade.tracking_same"),
            Some(stats.stage3_same as u64)
        );
        assert_eq!(
            snap.counter("core.cascade.boundaries"),
            Some(stats.boundaries as u64)
        );
        // Every stage span fired.
        for stage in [
            "core.pipeline.extract_us",
            "core.pipeline.cascade_us",
            "core.pipeline.assemble_us",
            "core.pipeline.scenetree_us",
            "core.pipeline.index_us",
        ] {
            assert!(
                snap.histogram(stage).unwrap().count > 0,
                "{stage} never recorded"
            );
        }
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let video = Video::new(clip((80, 60), &[(1, 5), (2, 5)]), 3.0).unwrap();
        let registry = Registry::disabled();
        let mut engine = AnalysisEngine::with_registry(AnalyzerConfig::default(), &registry);
        let analysis = engine.analyze(&video).unwrap();
        assert_eq!(
            analysis,
            AnalysisEngine::without_observability(AnalyzerConfig::default())
                .analyze(&video)
                .unwrap()
        );
        let snap = registry.snapshot();
        assert_eq!(snap.counter("core.pipeline.frames"), Some(0));
        assert_eq!(snap.histogram("core.pipeline.extract_us").unwrap().count, 0);
    }

    proptest! {
        /// Stale-state guard: one engine (one scratch arena) reused across
        /// many clips of different dimensions yields exactly what a fresh
        /// engine yields for each clip.
        #[test]
        fn prop_engine_reuse_across_clip_dims_is_stateless(
            picks in proptest::collection::vec((0usize..3, 0u64..50, 2usize..6), 1..5)
        ) {
            const DIMS: [(u32, u32); 3] = [(80, 60), (160, 120), (100, 80)];
            let mut reused = AnalysisEngine::default();
            for (which, world, n) in picks {
                let dims = DIMS[which];
                let video = Video::new(clip(dims, &[(world, n), (world + 1, n)]), 3.0).unwrap();
                let from_reused = reused.analyze(&video).unwrap();
                let from_fresh = AnalysisEngine::default().analyze(&video).unwrap();
                prop_assert_eq!(from_reused, from_fresh);
            }
        }
    }
}
