//! Error types for the core analysis pipeline.

use std::fmt;

/// Errors produced by the core analysis pipeline.
///
/// The pipeline is deliberately strict about geometry: every stage of the
/// modified Gaussian pyramid assumes its input length is a member of the
/// size set `{1, 5, 13, 29, 61, 125, ...}` (Eq. 1 of the paper), and the
/// frame must be large enough for the ⊓-shaped background area to exist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The frame is too small to carve out the background/object areas.
    ///
    /// Holds the offending `(width, height)`.
    FrameTooSmall {
        /// Frame width in pixels (`c` in the paper).
        width: u32,
        /// Frame height in pixels (`r` in the paper).
        height: u32,
    },
    /// A pyramid input length was not a member of the size set.
    NotInSizeSet {
        /// The offending length.
        len: usize,
    },
    /// A frame buffer's data length does not match `width * height`.
    FrameDataMismatch {
        /// Expected number of pixels.
        expected: usize,
        /// Actual number of pixels supplied.
        actual: usize,
    },
    /// The video contains no frames.
    EmptyVideo,
    /// Frames within one video must share dimensions.
    InconsistentDimensions {
        /// Dimensions of the first frame.
        first: (u32, u32),
        /// Dimensions of the offending frame.
        other: (u32, u32),
        /// Index of the offending frame.
        frame: usize,
    },
    /// A shot id referenced a shot that does not exist.
    UnknownShot {
        /// The offending shot id.
        shot: usize,
    },
    /// A forced SIMD level names an instruction set this host lacks.
    ///
    /// Only produced by [`crate::SimdLevel::Forced`] — `Auto` and `Scalar`
    /// always resolve.
    SimdUnavailable {
        /// Name of the unavailable instruction set (e.g. `"avx2"`).
        isa: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::FrameTooSmall { width, height } => write!(
                f,
                "frame {width}x{height} is too small for background-area extraction"
            ),
            CoreError::NotInSizeSet { len } => write!(
                f,
                "length {len} is not in the Gaussian-pyramid size set {{1, 5, 13, 29, 61, ...}}"
            ),
            CoreError::FrameDataMismatch { expected, actual } => write!(
                f,
                "frame buffer holds {actual} pixels but dimensions imply {expected}"
            ),
            CoreError::EmptyVideo => write!(f, "video contains no frames"),
            CoreError::InconsistentDimensions {
                first,
                other,
                frame,
            } => write!(
                f,
                "frame {frame} has dimensions {}x{} but the video started at {}x{}",
                other.0, other.1, first.0, first.1
            ),
            CoreError::UnknownShot { shot } => write!(f, "unknown shot id {shot}"),
            CoreError::SimdUnavailable { isa } => {
                write!(
                    f,
                    "SIMD instruction set {isa} is not available on this host"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenient result alias for the core crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_frame_too_small() {
        let e = CoreError::FrameTooSmall {
            width: 4,
            height: 3,
        };
        assert!(e.to_string().contains("4x3"));
    }

    #[test]
    fn display_not_in_size_set() {
        let e = CoreError::NotInSizeSet { len: 7 };
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn display_inconsistent_dimensions_names_frame() {
        let e = CoreError::InconsistentDimensions {
            first: (160, 120),
            other: (80, 60),
            frame: 17,
        };
        let s = e.to_string();
        assert!(s.contains("frame 17"));
        assert!(s.contains("80x60"));
        assert!(s.contains("160x120"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&CoreError::EmptyVideo);
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(CoreError::EmptyVideo, CoreError::EmptyVideo);
        assert_ne!(CoreError::EmptyVideo, CoreError::UnknownShot { shot: 0 });
    }
}
