//! Parallel frame-feature extraction.
//!
//! Per-frame feature extraction (§2.1–§2.2: TBA/FOA crop, pyramid
//! reduction to signature and signs) is embarrassingly parallel — each
//! frame is independent. Only the SBD cascade that follows compares
//! *adjacent* frames and is inherently sequential. This module shards
//! frames across scoped worker threads, collects the per-frame
//! [`FrameFeatures`] back in frame order, and leaves the cascade exactly
//! as it is — so the result of a parallel run is **bit-identical** to the
//! serial path for every thread count:
//!
//! * extraction is a pure function of one frame (no accumulation order to
//!   perturb), and
//! * workers write into a pre-sized slot table indexed by frame number, so
//!   collection order is frame order regardless of scheduling.
//!
//! Errors also match serial semantics: if several frames fail, the error
//! reported is the one the serial loop would have hit first.

use crate::error::Result;
use crate::features::{FeatureExtractor, FrameFeatures, ScratchBuffers};
use crate::frame::{FrameBuf, Video};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How many worker threads feature extraction may use.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Parallelism {
    /// Extract in the calling thread (the default; no threads spawned).
    #[default]
    Serial,
    /// Use exactly this many workers. `Threads(0)` and `Threads(1)`
    /// behave like [`Parallelism::Serial`].
    Threads(usize),
    /// One worker per available CPU core.
    Auto,
}

impl Parallelism {
    /// Resolve to a concrete worker count (always ≥ 1).
    pub fn effective_threads(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }
}

/// Extract features for every frame, sharded across `threads` scoped
/// workers.
///
/// Returns the same `Vec<FrameFeatures>` (and on failure, the same
/// earliest error) as the serial `extractor.extract(frame)` loop. With
/// `threads <= 1` — or fewer frames than workers would help with — it *is*
/// the serial loop.
pub fn extract_features_parallel(
    extractor: &FeatureExtractor,
    frames: &[FrameBuf],
    threads: usize,
) -> Result<Vec<FrameFeatures>> {
    extract_features_reusing(extractor, frames, threads, &mut ScratchBuffers::default())
}

/// [`extract_features_parallel`] with an explicit scratch arena: the serial
/// path extracts through `scratch` (allocation-free after warm-up), the
/// sharded path gives each worker its own private arena for the duration
/// of the batch. This is the pipeline engine's extraction front-end.
pub fn extract_features_reusing(
    extractor: &FeatureExtractor,
    frames: &[FrameBuf],
    threads: usize,
    scratch: &mut ScratchBuffers,
) -> Result<Vec<FrameFeatures>> {
    let threads = threads.min(frames.len());
    if threads <= 1 {
        return frames
            .iter()
            .map(|f| extractor.extract_with(f, scratch))
            .collect();
    }

    // Work queue: an atomic cursor over frame indices; results land in
    // per-frame slots so collection order is frame order.
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Mutex<Option<Result<FrameFeatures>>>> = Vec::with_capacity(frames.len());
    slots.resize_with(frames.len(), || Mutex::new(None));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut scratch = ScratchBuffers::default();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= frames.len() {
                        break;
                    }
                    let result = extractor.extract_with(&frames[i], &mut scratch);
                    *slots[i].lock().expect("slot lock poisoned") = Some(result);
                }
            });
        }
    });

    // In-order collection: the first error encountered here is the first
    // error the serial loop would have returned.
    let mut out = Vec::with_capacity(frames.len());
    for slot in slots {
        let result = slot
            .into_inner()
            .expect("slot lock poisoned")
            .expect("every frame index was claimed by a worker");
        out.push(result?);
    }
    Ok(out)
}

/// Convenience: build the extractor from the video's dimensions and
/// extract every frame with the given [`Parallelism`].
pub fn extract_features_with(
    video: &Video,
    parallelism: Parallelism,
) -> Result<Vec<FrameFeatures>> {
    let (w, h) = video.dims();
    let extractor = FeatureExtractor::new(w, h)?;
    extract_features_parallel(&extractor, video.frames(), parallelism.effective_threads())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::extract_features;
    use crate::pixel::Rgb;

    fn textured_frames(n: usize, w: u32, h: u32) -> Vec<FrameBuf> {
        (0..n)
            .map(|t| {
                FrameBuf::from_fn(w, h, move |x, y| {
                    Rgb::new(
                        ((x * 3 + t as u32 * 17) % 251) as u8,
                        ((y * 5 + t as u32 * 29) % 241) as u8,
                        ((x + y + t as u32) % 223) as u8,
                    )
                })
            })
            .collect()
    }

    #[test]
    fn parallelism_resolution() {
        assert_eq!(Parallelism::Serial.effective_threads(), 1);
        assert_eq!(Parallelism::Threads(0).effective_threads(), 1);
        assert_eq!(Parallelism::Threads(6).effective_threads(), 6);
        assert!(Parallelism::Auto.effective_threads() >= 1);
    }

    #[test]
    fn parallel_matches_serial_for_every_thread_count() {
        let frames = textured_frames(23, 80, 60);
        let ex = FeatureExtractor::new(80, 60).unwrap();
        let serial: Vec<FrameFeatures> = frames.iter().map(|f| ex.extract(f).unwrap()).collect();
        for threads in [1, 2, 3, 4, 8, 64] {
            let parallel = extract_features_parallel(&ex, &frames, threads).unwrap();
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_frame_inputs() {
        let ex = FeatureExtractor::new(80, 60).unwrap();
        assert_eq!(extract_features_parallel(&ex, &[], 4).unwrap(), vec![]);
        let one = textured_frames(1, 80, 60);
        let out = extract_features_parallel(&ex, &one, 4).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], ex.extract(&one[0]).unwrap());
    }

    #[test]
    fn video_level_helper_matches_free_function() {
        let video = Video::new(textured_frames(12, 160, 120), 3.0).unwrap();
        let serial = extract_features(&video).unwrap();
        for p in [
            Parallelism::Serial,
            Parallelism::Threads(4),
            Parallelism::Auto,
        ] {
            assert_eq!(extract_features_with(&video, p).unwrap(), serial, "{p:?}");
        }
    }

    #[test]
    fn simd_by_threads_grid_is_bit_identical() {
        // The two performance knobs must compose without perturbing output.
        let frames = textured_frames(17, 97, 73);
        let serial: Vec<FrameFeatures> = {
            let ex = FeatureExtractor::new(97, 73).unwrap();
            frames.iter().map(|f| ex.extract(f).unwrap()).collect()
        };
        for simd in crate::simd::SimdLevel::all_available() {
            let ex = FeatureExtractor::with_simd(97, 73, simd).unwrap();
            for threads in [1, 3, 8] {
                assert_eq!(
                    extract_features_parallel(&ex, &frames, threads).unwrap(),
                    serial,
                    "simd={simd} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn parallelism_serializes() {
        for p in [
            Parallelism::Serial,
            Parallelism::Threads(4),
            Parallelism::Auto,
        ] {
            let s = serde_json::to_string(&p).unwrap();
            let back: Parallelism = serde_json::from_str(&s).unwrap();
            assert_eq!(back, p);
        }
    }
}
