//! Signatures and the stage-3 shift-and-match background tracking (§2.1,
//! Figure 4).
//!
//! A [`Signature`] is the one-row pyramid reduction of a frame's TBA. Two
//! frames of the same shot under camera motion have signatures that are
//! *shifted* copies of each other, so the tracker slides one signature over
//! the other one pixel at a time and, for every alignment, measures the
//! longest run of matching overlapping pixels. The running maximum over all
//! shifts ("how much the two images share the common background") is
//! compared against a threshold to decide whether the frames belong to the
//! same shot.

use crate::pixel::Rgb;
use serde::{Deserialize, Serialize};

/// A one-row pyramid signature (length is a size-set member, e.g. 253 for
/// 160×120 frames).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature(Vec<Rgb>);

impl Signature {
    /// Wrap a pixel line.
    pub fn new(pixels: Vec<Rgb>) -> Self {
        Signature(pixels)
    }

    /// Signature length.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the signature holds no pixels (never for real frames).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The pixels.
    #[inline]
    pub fn pixels(&self) -> &[Rgb] {
        &self.0
    }

    /// Mean absolute per-channel difference between two aligned signatures
    /// (no shifting). This is the stage-2 "quick" signature test: cheap,
    /// catches static-camera same-shot pairs long before the expensive
    /// tracking stage.
    ///
    /// # Panics
    /// Panics if lengths differ (all frames of a video share geometry).
    pub fn quick_diff(&self, other: &Signature) -> f64 {
        assert_eq!(self.len(), other.len(), "signatures must share length");
        if self.0.is_empty() {
            return 0.0;
        }
        let total: u64 = self
            .0
            .iter()
            .zip(&other.0)
            .map(|(a, b)| u64::from(a.l1_dist(*b)))
            .sum();
        total as f64 / (self.0.len() as f64 * 3.0)
    }

    /// Longest run of matching pixels between two aligned pixel slices.
    fn longest_run(a: &[Rgb], b: &[Rgb], tol: u8) -> usize {
        let mut best = 0usize;
        let mut cur = 0usize;
        for (pa, pb) in a.iter().zip(b) {
            if pa.matches_within(*pb, tol) {
                cur += 1;
                if cur > best {
                    best = cur;
                }
            } else {
                cur = 0;
            }
        }
        best
    }

    /// Stage-3 background tracking: shift the two signatures toward each
    /// other one pixel at a time (both directions, up to `max_shift`), and
    /// return the best longest-run match found together with the shift that
    /// produced it.
    ///
    /// `tol` is the per-channel pixel-match tolerance. A shift of `s > 0`
    /// aligns `self[s..]` with `other[..n-s]` (i.e. `other` slid right);
    /// `s < 0` is the mirror case.
    pub fn track(&self, other: &Signature, tol: u8, max_shift: usize) -> TrackResult {
        assert_eq!(self.len(), other.len(), "signatures must share length");
        let n = self.len();
        if n == 0 {
            return TrackResult {
                best_run: 0,
                best_shift: 0,
                signature_len: 0,
            };
        }
        let max_shift = max_shift.min(n - 1);
        let mut best_run = Self::longest_run(&self.0, &other.0, tol);
        let mut best_shift: isize = 0;
        for s in 1..=max_shift {
            // `other` shifted right by s relative to `self`.
            let run = Self::longest_run(&self.0[s..], &other.0[..n - s], tol);
            if run > best_run {
                best_run = run;
                best_shift = s as isize;
            }
            // `other` shifted left by s.
            let run = Self::longest_run(&self.0[..n - s], &other.0[s..], tol);
            if run > best_run {
                best_run = run;
                best_shift = -(s as isize);
            }
        }
        TrackResult {
            best_run,
            best_shift,
            signature_len: n,
        }
    }

    /// Early-exit variant of [`Signature::track`] for detection: stops as
    /// soon as a run of at least `target_run` pixels is found, since the
    /// detector only needs to know whether the score clears its threshold
    /// (§6: "we are also studying techniques to speed up the video data
    /// segmentation process").
    ///
    /// The returned `best_run` is exact when below `target_run`; when the
    /// search exits early it is *some* run ≥ `target_run` (sufficient for a
    /// threshold decision, not necessarily the global maximum).
    pub fn track_until(
        &self,
        other: &Signature,
        tol: u8,
        max_shift: usize,
        target_run: usize,
    ) -> TrackResult {
        assert_eq!(self.len(), other.len(), "signatures must share length");
        let n = self.len();
        if n == 0 {
            return TrackResult {
                best_run: 0,
                best_shift: 0,
                signature_len: 0,
            };
        }
        let max_shift = max_shift.min(n - 1);
        let mut best_run = Self::longest_run(&self.0, &other.0, tol);
        let mut best_shift: isize = 0;
        if best_run >= target_run {
            return TrackResult {
                best_run,
                best_shift,
                signature_len: n,
            };
        }
        for s in 1..=max_shift {
            // Once the overlap is no longer than the best run found, no
            // further shift can improve the result.
            if n - s <= best_run {
                break;
            }
            let run = Self::longest_run(&self.0[s..], &other.0[..n - s], tol);
            if run > best_run {
                best_run = run;
                best_shift = s as isize;
                if best_run >= target_run {
                    break;
                }
            }
            let run = Self::longest_run(&self.0[..n - s], &other.0[s..], tol);
            if run > best_run {
                best_run = run;
                best_shift = -(s as isize);
                if best_run >= target_run {
                    break;
                }
            }
        }
        TrackResult {
            best_run,
            best_shift,
            signature_len: n,
        }
    }
}

/// Result of the stage-3 shift-and-match tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackResult {
    /// Longest run of matching overlapping pixels over all shifts tried.
    pub best_run: usize,
    /// The shift (in signature pixels) at which `best_run` occurred;
    /// positive means the second frame's content moved right.
    pub best_shift: isize,
    /// Signature length, for normalization.
    pub signature_len: usize,
}

impl TrackResult {
    /// `best_run / signature_len` in `\[0, 1\]`: the fraction of the
    /// background the two frames demonstrably share.
    pub fn score(&self) -> f64 {
        if self.signature_len == 0 {
            0.0
        } else {
            self.best_run as f64 / self.signature_len as f64
        }
    }
}

impl Signature {
    /// Resample this signature by `scale` (nearest-neighbor), keeping its
    /// length: content stretches (`scale > 1`, as after zooming in) or
    /// shrinks toward the center. Building block of the zoom-aware tracker.
    pub fn rescaled(&self, scale: f64) -> Signature {
        assert!(scale > 0.0, "scale must be positive");
        let n = self.0.len();
        if n == 0 {
            return self.clone();
        }
        let center = (n as f64 - 1.0) / 2.0;
        let pixels = (0..n)
            .map(|i| {
                let src = center + (i as f64 - center) / scale;
                let idx = src.round().clamp(0.0, n as f64 - 1.0) as usize;
                self.0[idx]
            })
            .collect();
        Signature::new(pixels)
    }

    /// Zoom-aware tracking (an extension beyond the paper, §6 direction):
    /// try the plain shift search and, additionally, shift searches against
    /// rescaled copies of `self` at each ratio in `scales` — a camera zoom
    /// rescales the background strip, which pure shifting cannot follow.
    /// Returns the best result over all attempted scales.
    pub fn track_multiscale(
        &self,
        other: &Signature,
        tol: u8,
        max_shift: usize,
        scales: &[f64],
    ) -> TrackResult {
        let mut best = self.track(other, tol, max_shift);
        for &scale in scales {
            let r = self.rescaled(scale).track(other, tol, max_shift);
            if r.best_run > best.best_run {
                best = r;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sig_from(values: &[u8]) -> Signature {
        Signature::new(values.iter().map(|&v| Rgb::gray(v)).collect())
    }

    #[test]
    fn quick_diff_zero_for_identical() {
        let s = sig_from(&[1, 2, 3, 4, 5]);
        assert_eq!(s.quick_diff(&s), 0.0);
    }

    #[test]
    fn quick_diff_uniform_offset() {
        let a = sig_from(&[10, 20, 30, 40, 50]);
        let b = sig_from(&[15, 25, 35, 45, 55]);
        assert!((a.quick_diff(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn identical_signatures_track_with_full_run_at_zero_shift() {
        let s = sig_from(&[5, 9, 14, 200, 30, 77, 4, 4, 8, 250, 13, 1, 90]);
        let r = s.track(&s, 0, s.len());
        assert_eq!(r.best_run, s.len());
        assert_eq!(r.best_shift, 0);
        assert!((r.score() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shifted_signature_found_at_correct_shift() {
        // b is a shifted-by-3 copy of a (camera pan); the tracker must find
        // a long run at shift 3 (new content enters at one edge, so the run
        // is n - 3).
        let base: Vec<u8> = (0..32).map(|i| (i * 23 % 251) as u8).collect();
        let n = 24;
        let a = sig_from(&base[0..n]);
        let b = sig_from(&base[3..n + 3]);
        let r = a.track(&b, 0, n);
        assert_eq!(r.best_run, n - 3);
        assert_eq!(r.best_shift.unsigned_abs(), 3);
    }

    #[test]
    fn opposite_shift_direction_detected() {
        let base: Vec<u8> = (0..32).map(|i| (i * 31 % 211) as u8).collect();
        let n = 24;
        let a = sig_from(&base[4..n + 4]);
        let b = sig_from(&base[0..n]);
        let r1 = a.track(&b, 0, n);
        let r2 = b.track(&a, 0, n);
        assert_eq!(r1.best_run, n - 4);
        assert_eq!(r2.best_run, n - 4);
        // Mirror symmetry of the shift sign.
        assert_eq!(r1.best_shift, -r2.best_shift);
    }

    #[test]
    fn unrelated_signatures_score_low() {
        let a = sig_from(&(0..29).map(|i| (i * 53 % 256) as u8).collect::<Vec<_>>());
        let b = sig_from(
            &(0..29)
                .map(|i| ((i * 101 % 256) ^ 0x5a) as u8)
                .collect::<Vec<_>>(),
        );
        let r = a.track(&b, 4, 29);
        assert!(r.score() < 0.3, "unrelated content scored {:.3}", r.score());
    }

    #[test]
    fn max_shift_limits_search() {
        let base: Vec<u8> = (0..40).map(|i| (i * 17 % 199) as u8).collect();
        let n = 24;
        let a = sig_from(&base[0..n]);
        let b = sig_from(&base[10..n + 10]);
        // With max_shift 4 the true alignment (shift 10) is unreachable.
        let limited = a.track(&b, 0, 4);
        let full = a.track(&b, 0, n);
        assert!(limited.best_run < full.best_run);
        assert_eq!(full.best_shift.unsigned_abs(), 10);
    }

    #[test]
    fn tolerance_admits_noisy_matches() {
        let clean: Vec<u8> = (0..24).map(|i| (i * 19 % 230) as u8).collect();
        let noisy: Vec<u8> = clean
            .iter()
            .enumerate()
            .map(|(i, &v)| if i % 2 == 0 { v.saturating_add(3) } else { v })
            .collect();
        let a = sig_from(&clean);
        let b = sig_from(&noisy);
        assert_eq!(a.track(&b, 0, 0).best_run, 1); // exact match breaks on noise
        assert_eq!(a.track(&b, 3, 0).best_run, 24); // tolerance rides over it
    }

    #[test]
    fn empty_signature_tracks_to_zero() {
        let e = Signature::new(vec![]);
        let r = e.track(&e, 0, 5);
        assert_eq!(r.best_run, 0);
        assert_eq!(r.score(), 0.0);
    }

    #[test]
    fn rescaled_identity_and_bounds() {
        let s = sig_from(&(0..25).map(|i| (i * 9) as u8).collect::<Vec<_>>());
        assert_eq!(s.rescaled(1.0), s);
        let stretched = s.rescaled(1.5);
        assert_eq!(stretched.len(), s.len());
        // Center pixel unchanged.
        assert_eq!(stretched.pixels()[12], s.pixels()[12]);
        // Every output pixel is some input pixel (nearest-neighbor).
        for p in stretched.pixels() {
            assert!(s.pixels().contains(p));
        }
    }

    #[test]
    fn multiscale_tracks_a_zoom_that_plain_shifting_cannot() {
        // b is a 1.25x-zoomed copy of a (smooth ramp content, so nearest-
        // neighbor rescale is faithful).
        let n = 61usize;
        let a = Signature::new(
            (0..n)
                .map(|i| Rgb::gray((i as f64 * 250.0 / n as f64) as u8))
                .collect(),
        );
        let b = a.rescaled(1.25);
        let plain = a.track(&b, 2, n);
        let multi = a.track_multiscale(&b, 2, n, &[0.8, 1.25]);
        assert!(
            multi.best_run > plain.best_run,
            "multiscale {} must beat plain {}",
            multi.best_run,
            plain.best_run
        );
        assert!(multi.score() > 0.9, "score {:.2}", multi.score());
    }

    #[test]
    fn multiscale_never_worse_than_plain() {
        let a = sig_from(&(0..29).map(|i| (i * 31 % 256) as u8).collect::<Vec<_>>());
        let b = sig_from(&(0..29).map(|i| (i * 17 % 256) as u8).collect::<Vec<_>>());
        let plain = a.track(&b, 8, 29);
        let multi = a.track_multiscale(&b, 8, 29, &[0.9, 1.1]);
        assert!(multi.best_run >= plain.best_run);
    }

    #[test]
    fn track_until_early_exits_on_identical() {
        let s = sig_from(&(0..40).map(|i| (i * 7 % 256) as u8).collect::<Vec<_>>());
        let r = s.track_until(&s, 0, 40, 10);
        // Exits at zero shift with a sufficient (not necessarily maximal) run.
        assert!(r.best_run >= 10);
        assert_eq!(r.best_shift, 0);
    }

    #[test]
    fn track_until_exact_below_target() {
        // When no run reaches the target, the result equals the exhaustive
        // search exactly.
        let a = sig_from(&(0..29).map(|i| (i * 53 % 256) as u8).collect::<Vec<_>>());
        let b = sig_from(
            &(0..29)
                .map(|i| ((i * 101 % 256) ^ 0x5a) as u8)
                .collect::<Vec<_>>(),
        );
        let exact = a.track(&b, 4, 29);
        let early = a.track_until(&b, 4, 29, 29);
        assert_eq!(exact.best_run, early.best_run);
    }

    proptest! {
        /// The §6 speed-up never changes a threshold decision: for any
        /// target, `track_until` clears the target iff the exhaustive
        /// search's maximum does.
        #[test]
        fn prop_track_until_decision_equivalent(
            a in prop::collection::vec(any::<u8>(), 4..40),
            b in prop::collection::vec(any::<u8>(), 4..40),
            tol in 0u8..24,
            target in 1usize..32,
        ) {
            let n = a.len().min(b.len());
            let sa = sig_from(&a[..n]);
            let sb = sig_from(&b[..n]);
            let exact = sa.track(&sb, tol, n);
            let early = sa.track_until(&sb, tol, n, target);
            prop_assert_eq!(exact.best_run >= target, early.best_run >= target,
                "exact {} early {} target {}", exact.best_run, early.best_run, target);
            // Below target, early is exact.
            if exact.best_run < target {
                prop_assert_eq!(exact.best_run, early.best_run);
            }
        }

        #[test]
        fn prop_track_symmetric_in_run(
            a in prop::collection::vec(any::<u8>(), 8..32),
            b_seed in any::<u64>(),
            tol in 0u8..16,
        ) {
            let n = a.len();
            let mut x = b_seed | 1;
            let mut next = || {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 40) as u8
            };
            let b: Vec<u8> = (0..n).map(|_| next()).collect();
            let sa = sig_from(&a);
            let sb = sig_from(&b);
            let r_ab = sa.track(&sb, tol, n);
            let r_ba = sb.track(&sa, tol, n);
            prop_assert_eq!(r_ab.best_run, r_ba.best_run);
        }

        #[test]
        fn prop_score_in_unit_interval(
            a in prop::collection::vec(any::<u8>(), 1..48),
            shift in 0usize..8,
            tol in 0u8..32,
        ) {
            let sa = sig_from(&a);
            let rotated: Vec<u8> = a.iter().cycle().skip(shift % a.len()).take(a.len()).copied().collect();
            let sb = sig_from(&rotated);
            let r = sa.track(&sb, tol, a.len());
            prop_assert!((0.0..=1.0).contains(&r.score()));
        }

        #[test]
        fn prop_self_track_is_perfect(a in prop::collection::vec(any::<u8>(), 1..64)) {
            let s = sig_from(&a);
            let r = s.track(&s, 0, a.len());
            prop_assert_eq!(r.best_run, a.len());
            prop_assert_eq!(r.best_shift, 0);
        }

        #[test]
        fn prop_larger_tolerance_never_hurts(
            a in prop::collection::vec(any::<u8>(), 4..32),
            b in prop::collection::vec(any::<u8>(), 4..32),
            t1 in 0u8..32,
            t2 in 0u8..32,
        ) {
            let n = a.len().min(b.len());
            let sa = sig_from(&a[..n]);
            let sb = sig_from(&b[..n]);
            let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
            prop_assert!(sa.track(&sb, lo, n).best_run <= sa.track(&sb, hi, n).best_run);
        }
    }
}
