//! The sorted bucket array over `D^v` — the sublinear replacement for the
//! flat Table-4 scan.
//!
//! Entries are kept in one contiguous array sorted by `(D^v, ShotKey)`;
//! on top of it sits a *bucket directory*: the `D^v` axis is cut into
//! fixed-width buckets (width = [`BucketParams::bucket_width`], anchored
//! at the corpus minimum) and `offsets[b]..offsets[b+1]` is the slice of
//! the array belonging to bucket `b`. A probe therefore touches only the
//! buckets overlapping its `D^v` window and scores only the entries
//! inside them — the two numbers ([`ProbeStats`]) that the
//! [`CostModel`](super::cost::CostModel) predicts and the accuracy suite
//! checks.
//!
//! Two query shapes are supported, both **exact** (pinned against the
//! brute-force linear scan by the equivalence property suite):
//!
//! * **range** — the paper's Eqs. 7–8 window, identical semantics to
//!   [`VarianceIndex::query`](super::VarianceIndex::query);
//! * **top-k** — the `k` nearest entries to the query point in
//!   `(D^v, √Var^BA)` space, found by expanding outward from the query's
//!   bucket and stopping once the next bucket's best possible distance
//!   exceeds the current k-th best (ties broken by ascending
//!   [`ShotKey`](super::ShotKey), so equal-distance buckets are still
//!   probed).

use super::{IndexEntry, Match, VarianceQuery};
use crate::index::cost::CorpusStats;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Construction parameters of the [`BucketIndex`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketParams {
    /// Width of one bucket in `D^v` units. Smaller buckets touch fewer
    /// false candidates per probe but make the directory larger; the
    /// effective width is widened automatically when the corpus span
    /// would otherwise explode the directory (see
    /// [`BucketIndex::effective_width`]).
    pub bucket_width: f64,
    /// Number of equi-width bins in the corpus-statistics histogram the
    /// cost model estimates from.
    pub stats_bins: usize,
}

impl Default for BucketParams {
    fn default() -> Self {
        BucketParams {
            bucket_width: 0.25,
            stats_bins: 64,
        }
    }
}

impl BucketParams {
    /// Default parameters with an explicit bucket width.
    pub fn with_bucket_width(bucket_width: f64) -> Self {
        BucketParams {
            bucket_width,
            ..Self::default()
        }
    }

    fn sane_width(&self) -> f64 {
        if self.bucket_width.is_finite() && self.bucket_width > 0.0 {
            self.bucket_width
        } else {
            Self::default().bucket_width
        }
    }
}

/// How much work one probe did — the measured side of the cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Buckets visited (for a scan: 0).
    pub buckets_touched: usize,
    /// Entries whose predicate/distance was evaluated.
    pub candidates: usize,
}

/// The sorted bucket array. Immutable once built; the maintained,
/// incrementally-updated wrapper is [`ShotIndex`](super::planner::ShotIndex).
#[derive(Debug, Clone)]
pub struct BucketIndex {
    params: BucketParams,
    /// Sorted by `(D^v, key)` ascending (`total_cmp` on `D^v`).
    entries: Vec<IndexEntry>,
    /// Cached `D^v` per entry (parallel to `entries`).
    dvs: Vec<f64>,
    /// Cached `√Var^BA` per entry.
    sbas: Vec<f64>,
    /// Left edge of bucket 0 (the corpus minimum `D^v`).
    origin: f64,
    /// Effective bucket width (≥ `params.bucket_width`).
    width: f64,
    /// `offsets[b]..offsets[b+1]` is bucket `b`'s slice of `entries`.
    offsets: Vec<u32>,
    stats: CorpusStats,
}

/// Max-heap item for top-k: the *worst* current answer is at the top.
/// Ordered by `(distance, key)` with `total_cmp`, so NaN distances are
/// handled deterministically.
struct Worst {
    dist: f64,
    entry: IndexEntry,
}

impl Worst {
    fn rank_cmp(&self, other: &Self) -> Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then(self.entry.key.cmp(&other.entry.key))
    }
}

impl PartialEq for Worst {
    fn eq(&self, other: &Self) -> bool {
        self.rank_cmp(other) == Ordering::Equal
    }
}
impl Eq for Worst {}
impl PartialOrd for Worst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Worst {
    fn cmp(&self, other: &Self) -> Ordering {
        self.rank_cmp(other)
    }
}

/// Sort comparator shared by every build path: ascending `(D^v, key)`.
pub(crate) fn entry_order(a: &(f64, IndexEntry), b: &(f64, IndexEntry)) -> Ordering {
    a.0.total_cmp(&b.0).then(a.1.key.cmp(&b.1.key))
}

fn match_of(entry: &IndexEntry, dv: f64, sba: f64, dq: f64, sq: f64) -> Match {
    Match {
        entry: *entry,
        distance: ((dv - dq).powi(2) + (sba - sq).powi(2)).sqrt(),
    }
}

impl BucketIndex {
    /// Build from unsorted rows.
    pub fn build(entries: Vec<IndexEntry>, params: BucketParams) -> Self {
        let mut rows: Vec<(f64, IndexEntry)> = entries.into_iter().map(|e| (e.d_v(), e)).collect();
        rows.sort_by(entry_order);
        Self::from_sorted_rows(rows, params)
    }

    /// Build from rows already sorted by `(D^v, key)` — the incremental
    /// merge path of `ShotIndex`. Debug builds verify the order.
    pub(crate) fn from_sorted_rows(rows: Vec<(f64, IndexEntry)>, params: BucketParams) -> Self {
        debug_assert!(rows
            .windows(2)
            .all(|w| entry_order(&w[0], &w[1]) != Ordering::Greater));
        let n = rows.len();
        let mut entries = Vec::with_capacity(n);
        let mut dvs = Vec::with_capacity(n);
        let mut sbas = Vec::with_capacity(n);
        for (dv, e) in rows {
            entries.push(e);
            dvs.push(dv);
            sbas.push(e.sqrt_ba());
        }

        let base_width = params.sane_width();
        let (origin, width, nbuckets) = if n == 0 {
            (0.0, base_width, 1usize)
        } else {
            let lo = dvs[0];
            let hi = dvs[n - 1];
            let span = if hi.is_finite() && lo.is_finite() {
                (hi - lo).max(0.0)
            } else {
                0.0
            };
            // Cap the directory so a tiny width on a wide corpus cannot
            // allocate an absurd number of buckets.
            let cap = (4 * n + 8).min(1 << 22);
            let mut width = base_width;
            let mut nb = (span / width).floor() as usize + 1;
            if nb > cap {
                width = span / cap as f64;
                nb = (span / width).floor() as usize + 1;
                nb = nb.min(cap + 1);
            }
            (if lo.is_finite() { lo } else { 0.0 }, width, nb.max(1))
        };

        let mut offsets = vec![0u32; nbuckets + 1];
        for &dv in &dvs {
            let b = bucket_of(dv, origin, width, nbuckets);
            offsets[b + 1] += 1;
        }
        for b in 0..nbuckets {
            offsets[b + 1] += offsets[b];
        }

        let stats = CorpusStats::from_sorted_dvs(&dvs, params.stats_bins);
        BucketIndex {
            params,
            entries,
            dvs,
            sbas,
            origin,
            width,
            offsets,
            stats,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index has no rows.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All rows, sorted by `(D^v, key)`.
    pub fn entries(&self) -> &[IndexEntry] {
        &self.entries
    }

    /// Cached `(D^v, entry)` rows in index order — the merge input for
    /// incremental refresh.
    pub(crate) fn sorted_rows(&self) -> impl Iterator<Item = (f64, IndexEntry)> + '_ {
        self.dvs.iter().copied().zip(self.entries.iter().copied())
    }

    /// The parameters this index was built with.
    pub fn params(&self) -> BucketParams {
        self.params
    }

    /// The bucket width actually in use (may exceed
    /// [`BucketParams::bucket_width`] when the directory was capped).
    pub fn effective_width(&self) -> f64 {
        self.width
    }

    /// Number of buckets in the directory.
    pub fn bucket_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The corpus statistics the cost model estimates from.
    pub fn stats(&self) -> &CorpusStats {
        &self.stats
    }

    fn bucket_of(&self, dv: f64) -> usize {
        bucket_of(dv, self.origin, self.width, self.bucket_count())
    }

    /// Eqs. 7–8 range query through the bucket directory, plus the probe's
    /// work accounting. Results sorted by `(distance, key)` — identical
    /// IDs and order to [`Self::range_scan_with_stats`].
    pub fn range_with_stats(&self, q: &VarianceQuery) -> (Vec<Match>, ProbeStats) {
        if self.entries.is_empty() {
            return (Vec::new(), ProbeStats::default());
        }
        let dq = q.d_v();
        let sq = q.var_ba.sqrt();
        let lo_b = self.bucket_of(dq - q.alpha);
        let hi_b = self.bucket_of(dq + q.alpha);
        let (lo_b, hi_b) = (lo_b.min(hi_b), lo_b.max(hi_b));
        let lo = self.offsets[lo_b] as usize;
        let hi = self.offsets[hi_b + 1] as usize;
        let stats = ProbeStats {
            buckets_touched: hi_b - lo_b + 1,
            candidates: hi - lo,
        };
        let mut out: Vec<Match> = (lo..hi)
            .filter(|&i| q.matches(&self.entries[i]))
            .map(|i| match_of(&self.entries[i], self.dvs[i], self.sbas[i], dq, sq))
            .collect();
        out.sort_by(|a, b| {
            a.distance
                .total_cmp(&b.distance)
                .then(a.entry.key.cmp(&b.entry.key))
        });
        (out, stats)
    }

    /// Reference range probe: linear scan with the same predicate and
    /// ordering. `candidates` is always the full table.
    pub fn range_scan_with_stats(&self, q: &VarianceQuery) -> (Vec<Match>, ProbeStats) {
        let dq = q.d_v();
        let sq = q.var_ba.sqrt();
        let mut out: Vec<Match> = (0..self.entries.len())
            .filter(|&i| q.matches(&self.entries[i]))
            .map(|i| match_of(&self.entries[i], self.dvs[i], self.sbas[i], dq, sq))
            .collect();
        out.sort_by(|a, b| {
            a.distance
                .total_cmp(&b.distance)
                .then(a.entry.key.cmp(&b.entry.key))
        });
        (
            out,
            ProbeStats {
                buckets_touched: 0,
                candidates: self.entries.len(),
            },
        )
    }

    /// The `k` entries nearest to the query point in `(D^v, √Var^BA)`
    /// space (α/β are ignored — top-k is unconditional), expanding
    /// bucket-by-bucket outward from the query's bucket. Exact: same IDs
    /// and order as [`Self::topk_scan_with_stats`], ties by ascending key.
    pub fn topk_with_stats(&self, q: &VarianceQuery, k: usize) -> (Vec<Match>, ProbeStats) {
        if self.entries.is_empty() || k == 0 {
            return (Vec::new(), ProbeStats::default());
        }
        let dq = q.d_v();
        let sq = q.var_ba.sqrt();
        let nb = self.bucket_count();
        let center = self.bucket_of(dq);
        let mut heap: BinaryHeap<Worst> = BinaryHeap::with_capacity(k + 1);
        let mut stats = ProbeStats::default();

        // Visit buckets in order of their minimal horizontal distance to
        // dq; stop once that lower bound strictly exceeds the current
        // k-th best distance (on ties we keep probing: an equal-distance
        // entry with a smaller key must still win).
        let mut left: isize = center as isize; // next bucket to take on the left (inclusive)
        let mut right: usize = center + 1; // next bucket to take on the right
        let mut center_pending = true;
        loop {
            let next = if center_pending {
                center_pending = false;
                Some(center)
            } else {
                let ld = if left > 0 {
                    // left-1's right edge
                    Some(dq - (self.origin + (left as f64) * self.width))
                } else {
                    None
                };
                let rd = if right < nb {
                    Some((self.origin + (right as f64) * self.width) - dq)
                } else {
                    None
                };
                match (ld, rd) {
                    (None, None) => None,
                    (Some(_), None) => {
                        left -= 1;
                        Some(left as usize)
                    }
                    (None, Some(_)) => {
                        right += 1;
                        Some(right - 1)
                    }
                    (Some(l), Some(r)) => {
                        if l <= r {
                            left -= 1;
                            Some(left as usize)
                        } else {
                            right += 1;
                            Some(right - 1)
                        }
                    }
                }
            };
            let Some(b) = next else { break };

            // Horizontal lower bound on any distance inside bucket b.
            let b_lo = self.origin + b as f64 * self.width;
            let b_hi = b_lo + self.width;
            let hdist = if dq < b_lo {
                b_lo - dq
            } else if dq > b_hi {
                dq - b_hi
            } else {
                0.0
            };
            if heap.len() == k {
                if let Some(worst) = heap.peek() {
                    if hdist > worst.dist {
                        break;
                    }
                }
            }

            stats.buckets_touched += 1;
            let lo = self.offsets[b] as usize;
            let hi = self.offsets[b + 1] as usize;
            stats.candidates += hi - lo;
            for i in lo..hi {
                let cand = Worst {
                    dist: ((self.dvs[i] - dq).powi(2) + (self.sbas[i] - sq).powi(2)).sqrt(),
                    entry: self.entries[i],
                };
                if heap.len() < k {
                    heap.push(cand);
                } else if let Some(worst) = heap.peek() {
                    if cand.cmp(worst) == Ordering::Less {
                        heap.pop();
                        heap.push(cand);
                    }
                }
            }
        }

        let mut out: Vec<Match> = heap
            .into_iter()
            .map(|w| Match {
                entry: w.entry,
                distance: w.dist,
            })
            .collect();
        out.sort_by(|a, b| {
            a.distance
                .total_cmp(&b.distance)
                .then(a.entry.key.cmp(&b.entry.key))
        });
        (out, stats)
    }

    /// Reference top-k: one linear pass over the whole table.
    pub fn topk_scan_with_stats(&self, q: &VarianceQuery, k: usize) -> (Vec<Match>, ProbeStats) {
        let stats = ProbeStats {
            buckets_touched: 0,
            candidates: self.entries.len(),
        };
        if self.entries.is_empty() || k == 0 {
            return (Vec::new(), ProbeStats::default());
        }
        let dq = q.d_v();
        let sq = q.var_ba.sqrt();
        let mut heap: BinaryHeap<Worst> = BinaryHeap::with_capacity(k + 1);
        for i in 0..self.entries.len() {
            let cand = Worst {
                dist: ((self.dvs[i] - dq).powi(2) + (self.sbas[i] - sq).powi(2)).sqrt(),
                entry: self.entries[i],
            };
            if heap.len() < k {
                heap.push(cand);
            } else if let Some(worst) = heap.peek() {
                if cand.cmp(worst) == Ordering::Less {
                    heap.pop();
                    heap.push(cand);
                }
            }
        }
        let mut out: Vec<Match> = heap
            .into_iter()
            .map(|w| Match {
                entry: w.entry,
                distance: w.dist,
            })
            .collect();
        out.sort_by(|a, b| {
            a.distance
                .total_cmp(&b.distance)
                .then(a.entry.key.cmp(&b.entry.key))
        });
        (out, stats)
    }
}

fn bucket_of(dv: f64, origin: f64, width: f64, nbuckets: usize) -> usize {
    // NaN and -inf land in bucket 0 (`as` saturates), +inf in the last.
    let raw = ((dv - origin) / width).floor();
    (raw as usize).min(nbuckets - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::ShotKey;

    fn entry(video: u64, shot: u32, var_ba: f64, var_oa: f64) -> IndexEntry {
        IndexEntry {
            key: ShotKey { video, shot },
            var_ba,
            var_oa,
        }
    }

    fn corpus(n: usize) -> Vec<IndexEntry> {
        (0..n)
            .map(|i| {
                let x = i as f64;
                entry(
                    (i % 13) as u64,
                    i as u32,
                    (x * 0.613) % 64.0,
                    (x * 0.271) % 48.0,
                )
            })
            .collect()
    }

    #[test]
    fn empty_index_is_calm() {
        let idx = BucketIndex::build(vec![], BucketParams::default());
        assert!(idx.is_empty());
        assert_eq!(idx.bucket_count(), 1);
        let q = VarianceQuery::new(4.0, 1.0);
        assert!(idx.range_with_stats(&q).0.is_empty());
        assert!(idx.topk_with_stats(&q, 5).0.is_empty());
    }

    #[test]
    fn range_matches_scan_exactly() {
        let idx = BucketIndex::build(corpus(500), BucketParams::with_bucket_width(0.5));
        for i in 0..40 {
            let q = VarianceQuery::new(f64::from(i) * 1.7, f64::from(i) * 0.9)
                .with_tolerances(1.5, 2.0);
            let (a, sa) = idx.range_with_stats(&q);
            let (b, sb) = idx.range_scan_with_stats(&q);
            assert_eq!(
                a.iter().map(|m| m.entry.key).collect::<Vec<_>>(),
                b.iter().map(|m| m.entry.key).collect::<Vec<_>>(),
                "query {i}"
            );
            assert!(
                sa.candidates <= sb.candidates,
                "bucket probe must not overscan"
            );
            assert!(sa.buckets_touched >= 1);
        }
    }

    #[test]
    fn topk_matches_scan_exactly_with_ties() {
        // Many exact duplicates force the tie-break path.
        let mut entries = corpus(300);
        for i in 0..50 {
            entries.push(entry(99, i, 16.0, 4.0));
        }
        let idx = BucketIndex::build(entries, BucketParams::with_bucket_width(0.25));
        for k in [1usize, 3, 10, 55, 1000] {
            let q = VarianceQuery::new(16.0, 4.0);
            let (a, _) = idx.topk_with_stats(&q, k);
            let (b, _) = idx.topk_scan_with_stats(&q, k);
            assert_eq!(a.len(), k.min(idx.len()));
            assert_eq!(
                a.iter().map(|m| m.entry.key).collect::<Vec<_>>(),
                b.iter().map(|m| m.entry.key).collect::<Vec<_>>(),
                "k={k}"
            );
        }
    }

    #[test]
    fn topk_probe_is_sublinear_on_big_corpus() {
        let idx = BucketIndex::build(corpus(50_000), BucketParams::default());
        let q = VarianceQuery::new(25.0, 9.0);
        let (hits, stats) = idx.topk_with_stats(&q, 10);
        assert_eq!(hits.len(), 10);
        assert!(
            stats.candidates < idx.len() / 10,
            "top-10 probe scored {} of {} candidates",
            stats.candidates,
            idx.len()
        );
    }

    #[test]
    fn directory_cap_widens_buckets() {
        // 3 entries spanning a huge D^v range with a microscopic width:
        // the cap must widen the effective bucket width instead of
        // allocating millions of buckets.
        let entries = vec![
            entry(1, 0, 0.0, 1_000_000.0),
            entry(1, 1, 4.0, 4.0),
            entry(1, 2, 1_000_000.0, 0.0),
        ];
        let idx = BucketIndex::build(entries, BucketParams::with_bucket_width(1e-6));
        assert!(idx.bucket_count() <= 4 * 3 + 9);
        assert!(idx.effective_width() > 1e-6);
        let (hits, _) = idx.topk_with_stats(&VarianceQuery::new(4.0, 4.0), 1);
        assert_eq!(hits[0].entry.key.shot, 1);
    }

    #[test]
    fn degenerate_params_fall_back_to_default_width() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let idx = BucketIndex::build(corpus(10), BucketParams::with_bucket_width(bad));
            assert_eq!(idx.effective_width(), BucketParams::default().bucket_width);
        }
    }

    #[test]
    fn identical_dv_corpus_has_single_bucket() {
        let entries: Vec<IndexEntry> = (0..20).map(|i| entry(1, i, 9.0, 4.0)).collect();
        let idx = BucketIndex::build(entries, BucketParams::default());
        assert_eq!(idx.bucket_count(), 1);
        let (hits, stats) = idx.topk_with_stats(&VarianceQuery::new(9.0, 4.0), 5);
        assert_eq!(hits.len(), 5);
        // Ties broken by key: shots 0..5 in order.
        let shots: Vec<u32> = hits.iter().map(|m| m.entry.key.shot).collect();
        assert_eq!(shots, vec![0, 1, 2, 3, 4]);
        assert_eq!(stats.buckets_touched, 1);
    }
}
