//! A small navigable-graph index over extended signature vectors — the
//! "optional" arm of the index family, for the §6 per-channel model
//! where the 1-d `D^v` bucket array no longer orders the space well.
//!
//! Single-layer NSW-style construction: each row is embedded as a
//! 6-vector `(D^v_R, D^v_G, D^v_B, √Var^BA_R, √Var^BA_G, √Var^BA_B)`;
//! inserts run a beam search from the entry point and link the new node
//! bidirectionally to its [`GraphParams::max_degree`] nearest
//! discoveries, pruning neighbour lists back to the degree bound by
//! distance. Search is best-first beam expansion with width
//! `max(ef_search, k)`.
//!
//! Unlike the bucket array this structure is **approximate**: the suite
//! pins its *recall* against brute force (and that recall rises with the
//! beam width), not exact equality — which is why the exact planner paths
//! never route through it. Everything is deterministic: no randomized
//! level draws, so the same insert order always yields the same graph.

use super::{ExtendedEntry, ShotKey};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Construction/search parameters of [`SigGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphParams {
    /// Maximum neighbours per node.
    pub max_degree: usize,
    /// Beam width while inserting.
    pub ef_construction: usize,
    /// Default beam width while searching (raised to `k` when smaller).
    pub ef_search: usize,
}

impl Default for GraphParams {
    fn default() -> Self {
        GraphParams {
            max_degree: 8,
            ef_construction: 48,
            ef_search: 32,
        }
    }
}

impl GraphParams {
    fn sane(self) -> Self {
        GraphParams {
            max_degree: self.max_degree.clamp(1, 256),
            ef_construction: self.ef_construction.clamp(1, 4096),
            ef_search: self.ef_search.clamp(1, 4096),
        }
    }
}

/// The navigable graph. Immutable after [`SigGraph::build`].
#[derive(Debug, Clone)]
pub struct SigGraph {
    params: GraphParams,
    nodes: Vec<ExtendedEntry>,
    vecs: Vec<[f64; 6]>,
    links: Vec<Vec<u32>>,
}

fn embed(e: &ExtendedEntry) -> [f64; 6] {
    let d = e.feature.d_v();
    [
        d[0],
        d[1],
        d[2],
        e.feature.var_ba[0].sqrt(),
        e.feature.var_ba[1].sqrt(),
        e.feature.var_ba[2].sqrt(),
    ]
}

fn dist(a: &[f64; 6], b: &[f64; 6]) -> f64 {
    let mut sum = 0.0;
    for i in 0..6 {
        sum += (a[i] - b[i]).powi(2);
    }
    sum.sqrt()
}

/// Max-heap item ordered by `(distance, key)` — the worst kept result
/// sits on top.
struct Far {
    dist: f64,
    node: u32,
    key: ShotKey,
}

impl Far {
    fn rank_cmp(&self, other: &Self) -> Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then(self.key.cmp(&other.key))
    }
}
impl PartialEq for Far {
    fn eq(&self, other: &Self) -> bool {
        self.rank_cmp(other) == Ordering::Equal
    }
}
impl Eq for Far {}
impl PartialOrd for Far {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Far {
    fn cmp(&self, other: &Self) -> Ordering {
        self.rank_cmp(other)
    }
}

/// Min-heap item (reversed ordering) for the expansion frontier.
struct Near(Far);
impl PartialEq for Near {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl Eq for Near {}
impl PartialOrd for Near {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Near {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.rank_cmp(&self.0)
    }
}

impl SigGraph {
    /// Build by inserting rows one at a time (deterministic in the input
    /// order).
    pub fn build(entries: Vec<ExtendedEntry>, params: GraphParams) -> Self {
        let params = params.sane();
        let mut g = SigGraph {
            params,
            nodes: Vec::with_capacity(entries.len()),
            vecs: Vec::with_capacity(entries.len()),
            links: Vec::with_capacity(entries.len()),
        };
        for e in entries {
            g.insert(e);
        }
        g
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no rows.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The parameters in force.
    pub fn params(&self) -> GraphParams {
        self.params
    }

    fn insert(&mut self, entry: ExtendedEntry) {
        let v = embed(&entry);
        let id = self.nodes.len() as u32;
        self.nodes.push(entry);
        self.vecs.push(v);
        self.links.push(Vec::new());
        if id == 0 {
            return;
        }
        let found = self.beam(&v, self.params.ef_construction, Some(id as usize));
        for &(_, nb) in found.iter().take(self.params.max_degree) {
            self.link(id, nb);
            self.link(nb, id);
        }
    }

    fn link(&mut self, from: u32, to: u32) {
        if from == to || self.links[from as usize].contains(&to) {
            return;
        }
        self.links[from as usize].push(to);
        if self.links[from as usize].len() > self.params.max_degree {
            // Prune to the `max_degree` nearest, but always keep the most
            // recent edge so a fresh node can never be orphaned by its
            // own arrival.
            let base = self.vecs[from as usize];
            let newest = *self.links[from as usize].last().unwrap();
            let mut ranked: Vec<(f64, u32)> = self.links[from as usize]
                .iter()
                .map(|&n| (dist(&base, &self.vecs[n as usize]), n))
                .collect();
            ranked.sort_by(|a, b| {
                a.0.total_cmp(&b.0).then(
                    self.nodes[a.1 as usize]
                        .key
                        .cmp(&self.nodes[b.1 as usize].key),
                )
            });
            let mut kept: Vec<u32> = ranked
                .iter()
                .take(self.params.max_degree)
                .map(|&(_, n)| n)
                .collect();
            if !kept.contains(&newest) {
                kept.pop();
                kept.push(newest);
            }
            self.links[from as usize] = kept;
        }
    }

    /// Best-first beam search; returns up to `ef` hits sorted by
    /// `(distance, key)`. `skip` excludes a node id (the node being
    /// inserted).
    fn beam(&self, query: &[f64; 6], ef: usize, skip: Option<usize>) -> Vec<(f64, u32)> {
        if self.nodes.is_empty() {
            return Vec::new();
        }
        let mut visited = vec![false; self.nodes.len()];
        let mut frontier: BinaryHeap<Near> = BinaryHeap::new();
        let mut best: BinaryHeap<Far> = BinaryHeap::new();
        let seed = 0u32;
        visited[0] = true;
        let d0 = dist(query, &self.vecs[0]);
        let far0 = Far {
            dist: d0,
            node: seed,
            key: self.nodes[0].key,
        };
        frontier.push(Near(Far {
            dist: d0,
            node: seed,
            key: self.nodes[0].key,
        }));
        if skip != Some(0) {
            best.push(far0);
        }
        if let Some(s) = skip {
            if s < visited.len() {
                visited[s] = true;
            }
        }
        while let Some(Near(cur)) = frontier.pop() {
            if best.len() >= ef {
                if let Some(worst) = best.peek() {
                    if cur.dist > worst.dist {
                        break;
                    }
                }
            }
            for &nb in &self.links[cur.node as usize] {
                let nb_us = nb as usize;
                if visited[nb_us] {
                    continue;
                }
                visited[nb_us] = true;
                let d = dist(query, &self.vecs[nb_us]);
                let item = Far {
                    dist: d,
                    node: nb,
                    key: self.nodes[nb_us].key,
                };
                let admit = best.len() < ef
                    || best
                        .peek()
                        .map(|w| item.rank_cmp(w) == Ordering::Less)
                        .unwrap_or(true);
                if admit {
                    frontier.push(Near(Far {
                        dist: d,
                        node: nb,
                        key: self.nodes[nb_us].key,
                    }));
                    best.push(item);
                    if best.len() > ef {
                        best.pop();
                    }
                }
            }
        }
        let mut out: Vec<(f64, u32)> = best.into_iter().map(|f| (f.dist, f.node)).collect();
        out.sort_by(|a, b| {
            a.0.total_cmp(&b.0).then(
                self.nodes[a.1 as usize]
                    .key
                    .cmp(&self.nodes[b.1 as usize].key),
            )
        });
        out
    }

    /// Approximate `k` nearest rows to `feature` in the 6-d signature
    /// space, sorted by `(distance, key)`.
    pub fn search(
        &self,
        feature: crate::variance::ExtendedShotFeature,
        k: usize,
    ) -> Vec<(ExtendedEntry, f64)> {
        self.search_ef(feature, k, self.params.ef_search)
    }

    /// [`Self::search`] with an explicit beam width — wider beams trade
    /// probe time for recall.
    pub fn search_ef(
        &self,
        feature: crate::variance::ExtendedShotFeature,
        k: usize,
        ef: usize,
    ) -> Vec<(ExtendedEntry, f64)> {
        if k == 0 {
            return Vec::new();
        }
        let probe = ExtendedEntry {
            key: ShotKey { video: 0, shot: 0 },
            feature,
        };
        let q = embed(&probe);
        let hits = self.beam(&q, ef.max(k).max(1), None);
        hits.into_iter()
            .take(k)
            .map(|(d, n)| (self.nodes[n as usize], d))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variance::ExtendedShotFeature;

    fn feature(seed: u64) -> ExtendedShotFeature {
        // Cheap deterministic LCG features in a plausible variance range.
        let mut x = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut next = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as f64 / (1u64 << 31) as f64 * 40.0
        };
        ExtendedShotFeature {
            var_ba: [next(), next(), next()],
            var_oa: [next(), next(), next()],
        }
    }

    fn corpus(n: usize) -> Vec<ExtendedEntry> {
        (0..n)
            .map(|i| ExtendedEntry {
                key: ShotKey {
                    video: (i / 100) as u64,
                    shot: (i % 100) as u32,
                },
                feature: feature(i as u64 + 1),
            })
            .collect()
    }

    fn brute_topk(entries: &[ExtendedEntry], qf: ExtendedShotFeature, k: usize) -> Vec<ShotKey> {
        let probe = ExtendedEntry {
            key: ShotKey { video: 0, shot: 0 },
            feature: qf,
        };
        let qv = embed(&probe);
        let mut ranked: Vec<(f64, ShotKey)> = entries
            .iter()
            .map(|e| (dist(&qv, &embed(e)), e.key))
            .collect();
        ranked.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        ranked.into_iter().take(k).map(|(_, k)| k).collect()
    }

    #[test]
    fn empty_and_singleton() {
        let g = SigGraph::build(vec![], GraphParams::default());
        assert!(g.search(feature(7), 3).is_empty());
        let one = corpus(1);
        let g = SigGraph::build(one.clone(), GraphParams::default());
        let hits = g.search(feature(7), 3);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0.key, one[0].key);
    }

    #[test]
    fn recall_is_high_at_default_beam() {
        let entries = corpus(2_000);
        let g = SigGraph::build(entries.clone(), GraphParams::default());
        let k = 10;
        let mut hit = 0usize;
        let mut total = 0usize;
        for q in 0..20u64 {
            let qf = feature(10_000 + q);
            let truth = brute_topk(&entries, qf, k);
            let got: Vec<ShotKey> = g
                .search_ef(qf, k, 64)
                .into_iter()
                .map(|(e, _)| e.key)
                .collect();
            hit += got.iter().filter(|kk| truth.contains(kk)).count();
            total += k;
        }
        let recall = hit as f64 / total as f64;
        assert!(recall >= 0.9, "recall@10 = {recall}");
    }

    #[test]
    fn wider_beam_does_not_lose_recall() {
        let entries = corpus(1_000);
        let g = SigGraph::build(entries.clone(), GraphParams::default());
        let k = 10;
        let recall_at = |ef: usize| {
            let mut hit = 0usize;
            for q in 0..15u64 {
                let qf = feature(5_000 + q);
                let truth = brute_topk(&entries, qf, k);
                let got: Vec<ShotKey> = g
                    .search_ef(qf, k, ef)
                    .into_iter()
                    .map(|(e, _)| e.key)
                    .collect();
                hit += got.iter().filter(|kk| truth.contains(kk)).count();
            }
            hit as f64 / (15 * k) as f64
        };
        assert!(recall_at(128) + 1e-9 >= recall_at(4) - 0.05);
        assert!(recall_at(entries.len()) >= 0.95);
    }

    #[test]
    fn results_sorted_by_distance_then_key() {
        let entries = corpus(500);
        let g = SigGraph::build(entries, GraphParams::default());
        let hits = g.search(feature(42), 20);
        for w in hits.windows(2) {
            let ord = w[0].1.total_cmp(&w[1].1).then(w[0].0.key.cmp(&w[1].0.key));
            assert_ne!(ord, Ordering::Greater);
        }
    }
}
