//! The cost-effective variance index and similarity model (§4, Table 4,
//! Eqs. 7–8).
//!
//! Every shot is summarized by two scalars, `Var^BA` and `Var^OA`. The index
//! table stores, per shot, `√Var^BA`, `√Var^OA`, and the primary key
//! `D^v = √Var^BA − √Var^OA`. A query supplies the *impression* of how much
//! things change in the background and object areas (`Var_q^BA`,
//! `Var_q^OA`); the system returns every shot `i` satisfying
//!
//! ```text
//! D_q^v − α ≤ D_i^v ≤ D_q^v + α                      (Eq. 7)
//! √Var_q^BA − β ≤ √Var_i^BA ≤ √Var_q^BA + β          (Eq. 8)
//! ```
//!
//! with tolerances α = β = 1.0 in the paper's system.
//!
//! [`VarianceIndex`] keeps entries sorted by `D^v` so Eq. 7 is a binary-
//! search range scan; Eq. 8 filters the survivors. A [`QuantizedIndex`]
//! variant ("another common way to handle inexact queries is to do matching
//! on quantized data") is provided for the ablation benchmarks.
//!
//! At the scale ROADMAP targets ("millions of users / millions of shots")
//! the paper's flat table stops being enough, so the module grew into a
//! family:
//!
//! * [`bucket`] — [`BucketIndex`], a sorted bucket
//!   array over `D^v` answering range *and* top-k queries in sublinear
//!   time, reporting exactly how much work each probe did;
//! * [`cost`] — [`CostModel`], which predicts that work
//!   (buckets touched, candidates scored) from the index parameters and
//!   corpus statistics alone;
//! * [`planner`] — [`ShotIndex`], the maintained
//!   index used by the database layer: it plans every query (scan vs.
//!   buckets) from the cost estimate and records probe metrics into
//!   `vdb-obs`;
//! * [`graph`] — [`SigGraph`], a small navigable graph
//!   over extended (per-channel) signature vectors for approximate
//!   nearest-neighbor exploration of the §6 model.
//!
//! **Tie-break contract:** every query in this family orders results by
//! ascending `(distance, ShotKey)` — equal-distance matches come back in
//! `(video, shot)` order. The property suites pin the bucketed structures
//! to the brute-force linear scan under exactly this rule.

pub mod bucket;
pub mod cost;
pub mod graph;
pub mod planner;

pub use bucket::{BucketIndex, BucketParams, ProbeStats};
pub use cost::{CorpusStats, CostEstimate, CostModel};
pub use graph::{GraphParams, SigGraph};
pub use planner::{Explain, IndexRuntime, Plan, PlanChoice, ShotIndex};

use crate::variance::ShotFeature;
use serde::{Deserialize, Serialize};

/// Globally unique shot key: which video, which shot within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ShotKey {
    /// Opaque video identifier assigned by the catalog layer.
    pub video: u64,
    /// Shot id within the video.
    pub shot: u32,
}

/// One row of the index table (Table 4's columns).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IndexEntry {
    /// The shot this row describes.
    pub key: ShotKey,
    /// `Var^BA`.
    pub var_ba: f64,
    /// `Var^OA`.
    pub var_oa: f64,
}

impl IndexEntry {
    /// Build a row from a shot's feature vector.
    pub fn new(key: ShotKey, feature: ShotFeature) -> Self {
        IndexEntry {
            key,
            var_ba: feature.var_ba,
            var_oa: feature.var_oa,
        }
    }

    /// `√Var^BA` (Eq. 8's left side).
    #[inline]
    pub fn sqrt_ba(&self) -> f64 {
        self.var_ba.sqrt()
    }

    /// `√Var^OA`.
    #[inline]
    pub fn sqrt_oa(&self) -> f64 {
        self.var_oa.sqrt()
    }

    /// `D^v = √Var^BA − √Var^OA`.
    #[inline]
    pub fn d_v(&self) -> f64 {
        self.sqrt_ba() - self.sqrt_oa()
    }
}

/// A similarity query: the user's impression of change in background and
/// object areas, plus the matching tolerances.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VarianceQuery {
    /// `Var_q^BA`.
    pub var_ba: f64,
    /// `Var_q^OA`.
    pub var_oa: f64,
    /// α of Eq. 7.
    pub alpha: f64,
    /// β of Eq. 8.
    pub beta: f64,
}

impl VarianceQuery {
    /// The paper's tolerances: α = β = 1.0.
    pub const DEFAULT_ALPHA: f64 = 1.0;
    /// See [`Self::DEFAULT_ALPHA`].
    pub const DEFAULT_BETA: f64 = 1.0;

    /// Query with the paper's default tolerances.
    pub fn new(var_ba: f64, var_oa: f64) -> Self {
        VarianceQuery {
            var_ba,
            var_oa,
            alpha: Self::DEFAULT_ALPHA,
            beta: Self::DEFAULT_BETA,
        }
    }

    /// Query using an existing shot's feature vector as the example
    /// ("retrieve shots like this one" — the Figures 8–10 experiments).
    pub fn by_example(feature: ShotFeature) -> Self {
        Self::new(feature.var_ba, feature.var_oa)
    }

    /// Override the tolerances.
    pub fn with_tolerances(mut self, alpha: f64, beta: f64) -> Self {
        self.alpha = alpha;
        self.beta = beta;
        self
    }

    /// `D_q^v`.
    #[inline]
    pub fn d_v(&self) -> f64 {
        self.var_ba.sqrt() - self.var_oa.sqrt()
    }

    /// Whether an entry satisfies Eqs. 7 and 8.
    pub fn matches(&self, e: &IndexEntry) -> bool {
        let dq = self.d_v();
        let di = e.d_v();
        if di < dq - self.alpha || di > dq + self.alpha {
            return false;
        }
        let sq = self.var_ba.sqrt();
        let si = e.sqrt_ba();
        si >= sq - self.beta && si <= sq + self.beta
    }
}

/// A match, with its distance in `(D^v, √Var^BA)` space for ranking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Match {
    /// The matching row.
    pub entry: IndexEntry,
    /// Euclidean distance to the query in `(D^v, √Var^BA)` space; used only
    /// to order equally-valid matches for display (the paper shows "the
    /// three most similar shots").
    pub distance: f64,
}

/// The sorted index table.
///
/// Entries are kept ordered by `D^v`; Eq. 7 becomes one `partition_point`
/// range and Eq. 8 a filter over it. Build is O(n log n), queries are
/// O(log n + answer).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct VarianceIndex {
    /// Sorted by `d_v` ascending.
    entries: Vec<IndexEntry>,
}

impl VarianceIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from unsorted rows.
    pub fn build(mut entries: Vec<IndexEntry>) -> Self {
        entries.sort_by(|a, b| a.d_v().total_cmp(&b.d_v()));
        VarianceIndex { entries }
    }

    /// Insert one row (keeps order; O(n) shift).
    pub fn insert(&mut self, entry: IndexEntry) {
        let pos = self.entries.partition_point(|e| e.d_v() < entry.d_v());
        self.entries.insert(pos, entry);
    }

    /// Remove every row of a video (when a video is deleted from the
    /// database). Returns how many rows were removed.
    pub fn remove_video(&mut self, video: u64) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.key.video != video);
        before - self.entries.len()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index has no rows.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All rows, sorted by `D^v`.
    pub fn entries(&self) -> &[IndexEntry] {
        &self.entries
    }

    /// Eq. 7 + Eq. 8 range query, results sorted by distance to the query
    /// (nearest first; ties by key for determinism).
    pub fn query(&self, q: &VarianceQuery) -> Vec<Match> {
        let dq = q.d_v();
        let lo = self.entries.partition_point(|e| e.d_v() < dq - q.alpha);
        let hi = self.entries.partition_point(|e| e.d_v() <= dq + q.alpha);
        let sq = q.var_ba.sqrt();
        let mut out: Vec<Match> = self.entries[lo..hi]
            .iter()
            .filter(|e| {
                let si = e.sqrt_ba();
                si >= sq - q.beta && si <= sq + q.beta
            })
            .map(|e| Match {
                entry: *e,
                distance: ((e.d_v() - dq).powi(2) + (e.sqrt_ba() - sq).powi(2)).sqrt(),
            })
            .collect();
        out.sort_by(|a, b| {
            a.distance
                .total_cmp(&b.distance)
                .then(a.entry.key.cmp(&b.entry.key))
        });
        out
    }

    /// Reference implementation: linear scan with the same predicate.
    /// Exists to validate the sorted index and to benchmark against it.
    pub fn query_scan(&self, q: &VarianceQuery) -> Vec<Match> {
        let dq = q.d_v();
        let sq = q.var_ba.sqrt();
        let mut out: Vec<Match> = self
            .entries
            .iter()
            .filter(|e| q.matches(e))
            .map(|e| Match {
                entry: *e,
                distance: ((e.d_v() - dq).powi(2) + (e.sqrt_ba() - sq).powi(2)).sqrt(),
            })
            .collect();
        out.sort_by(|a, b| {
            a.distance
                .total_cmp(&b.distance)
                .then(a.entry.key.cmp(&b.entry.key))
        });
        out
    }
}

/// The quantization-based alternative the paper mentions in passing:
/// `D^v` and `√Var^BA` are quantized to a grid of cell size α (resp. β)
/// and matching shots are looked up in the query's cell and its neighbors.
///
/// Exact with respect to Eqs. 7–8 (a candidate superset is range-checked),
/// but with O(1) expected lookup. Used by the ablation bench.
#[derive(Debug, Clone, Default)]
pub struct QuantizedIndex {
    cell_alpha: f64,
    cell_beta: f64,
    cells: std::collections::HashMap<(i64, i64), Vec<IndexEntry>>,
}

impl QuantizedIndex {
    /// Build with the given cell sizes (use the α/β you will query with).
    pub fn build(entries: &[IndexEntry], cell_alpha: f64, cell_beta: f64) -> Self {
        assert!(
            cell_alpha > 0.0 && cell_beta > 0.0,
            "cell sizes must be positive"
        );
        let mut cells: std::collections::HashMap<(i64, i64), Vec<IndexEntry>> =
            std::collections::HashMap::new();
        for e in entries {
            let cx = (e.d_v() / cell_alpha).floor() as i64;
            let cy = (e.sqrt_ba() / cell_beta).floor() as i64;
            cells.entry((cx, cy)).or_default().push(*e);
        }
        QuantizedIndex {
            cell_alpha,
            cell_beta,
            cells,
        }
    }

    /// Same semantics as [`VarianceIndex::query`].
    pub fn query(&self, q: &VarianceQuery) -> Vec<Match> {
        let dq = q.d_v();
        let sq = q.var_ba.sqrt();
        // The query window spans alpha/cell_alpha cells; visit all cells
        // overlapping it.
        let cx_lo = ((dq - q.alpha) / self.cell_alpha).floor() as i64;
        let cx_hi = ((dq + q.alpha) / self.cell_alpha).floor() as i64;
        let cy_lo = ((sq - q.beta) / self.cell_beta).floor() as i64;
        let cy_hi = ((sq + q.beta) / self.cell_beta).floor() as i64;
        let mut out = Vec::new();
        for cx in cx_lo..=cx_hi {
            for cy in cy_lo..=cy_hi {
                if let Some(v) = self.cells.get(&(cx, cy)) {
                    for e in v {
                        if q.matches(e) {
                            out.push(Match {
                                entry: *e,
                                distance: ((e.d_v() - dq).powi(2) + (e.sqrt_ba() - sq).powi(2))
                                    .sqrt(),
                            });
                        }
                    }
                }
            }
        }
        out.sort_by(|a, b| {
            a.distance
                .total_cmp(&b.distance)
                .then(a.entry.key.cmp(&b.entry.key))
        });
        out
    }
}

/// One row of the *extended* index (§6's more discriminating model):
/// per-channel variances instead of channel-averaged ones.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExtendedEntry {
    /// The shot this row describes.
    pub key: ShotKey,
    /// Per-channel feature vector.
    pub feature: crate::variance::ExtendedShotFeature,
}

impl ExtendedEntry {
    /// Mean of the per-channel `D^v` values — the index's sort key. (Note:
    /// this is *not* the basic model's `D^v`, which averages the variances
    /// before the square root; the per-channel mean is what the α-window
    /// soundly bounds: if every channel's `D^v` is within α of the query's,
    /// so is their mean.)
    pub fn mean_d_v(&self) -> f64 {
        let d = self.feature.d_v();
        (d[0] + d[1] + d[2]) / 3.0
    }
}

/// An extended query: Eqs. 7–8 applied *per channel* — a shot matches only
/// if every channel's `D^v` is within α and every channel's `√Var^BA` is
/// within β of the query's. Strictly more discriminating than the basic
/// model on the same tolerances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtendedQuery {
    /// The example feature to match.
    pub feature: crate::variance::ExtendedShotFeature,
    /// α of Eq. 7 (per channel).
    pub alpha: f64,
    /// β of Eq. 8 (per channel).
    pub beta: f64,
}

impl ExtendedQuery {
    /// Query by example with the paper's default tolerances.
    pub fn by_example(feature: crate::variance::ExtendedShotFeature) -> Self {
        ExtendedQuery {
            feature,
            alpha: VarianceQuery::DEFAULT_ALPHA,
            beta: VarianceQuery::DEFAULT_BETA,
        }
    }

    /// Override the tolerances.
    pub fn with_tolerances(mut self, alpha: f64, beta: f64) -> Self {
        self.alpha = alpha;
        self.beta = beta;
        self
    }

    /// Per-channel Eqs. 7–8.
    pub fn matches(&self, e: &ExtendedEntry) -> bool {
        let qd = self.feature.d_v();
        let ed = e.feature.d_v();
        for ch in 0..3 {
            if (ed[ch] - qd[ch]).abs() > self.alpha {
                return false;
            }
            let qs = self.feature.var_ba[ch].sqrt();
            let es = e.feature.var_ba[ch].sqrt();
            if (es - qs).abs() > self.beta {
                return false;
            }
        }
        true
    }

    /// Euclidean distance in the 6-dimensional `(D^v, √Var^BA)` per-channel
    /// space, for ranking.
    pub fn distance(&self, e: &ExtendedEntry) -> f64 {
        let qd = self.feature.d_v();
        let ed = e.feature.d_v();
        let mut sum = 0.0;
        for ch in 0..3 {
            sum += (ed[ch] - qd[ch]).powi(2);
            sum += (e.feature.var_ba[ch].sqrt() - self.feature.var_ba[ch].sqrt()).powi(2);
        }
        sum.sqrt()
    }
}

/// The extended index: rows sorted by channel-averaged `D^v` (which bounds
/// the per-channel window: if every channel's `D^v` is within α of the
/// query's, so is their mean), then filtered per channel.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExtendedIndex {
    entries: Vec<ExtendedEntry>,
}

impl ExtendedIndex {
    /// Build from unsorted rows.
    pub fn build(mut entries: Vec<ExtendedEntry>) -> Self {
        entries.sort_by(|a, b| a.mean_d_v().total_cmp(&b.mean_d_v()));
        ExtendedIndex { entries }
    }

    /// Insert one row.
    pub fn insert(&mut self, entry: ExtendedEntry) {
        let pos = self
            .entries
            .partition_point(|e| e.mean_d_v() < entry.mean_d_v());
        self.entries.insert(pos, entry);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index has no rows.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Range query, nearest first.
    pub fn query(&self, q: &ExtendedQuery) -> Vec<(ExtendedEntry, f64)> {
        // Mean D^v is within α whenever all channels are: prune with it.
        let qd = q.feature.d_v();
        let mean_qd = (qd[0] + qd[1] + qd[2]) / 3.0;
        let lo = self
            .entries
            .partition_point(|e| e.mean_d_v() < mean_qd - q.alpha);
        let hi = self
            .entries
            .partition_point(|e| e.mean_d_v() <= mean_qd + q.alpha);
        let mut out: Vec<(ExtendedEntry, f64)> = self.entries[lo..hi]
            .iter()
            .filter(|e| q.matches(e))
            .map(|e| (*e, q.distance(e)))
            .collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.key.cmp(&b.0.key)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn entry(video: u64, shot: u32, var_ba: f64, var_oa: f64) -> IndexEntry {
        IndexEntry {
            key: ShotKey { video, shot },
            var_ba,
            var_oa,
        }
    }

    #[test]
    fn dv_arithmetic() {
        // D^v = sqrt(Var^BA) - sqrt(Var^OA). (The paper's Table 4(b) quotes
        // D^v = 5.86 with Var^BA = 17.37 for shot #12W, which is only
        // consistent if the two columns come from different rows of the
        // scanned table; we verify our own arithmetic, not the scan.)
        let e = entry(1, 12, 25.0, 4.0);
        assert!((e.d_v() - 3.0).abs() < 1e-12); // 5 - 2
        assert!((e.sqrt_ba() - 5.0).abs() < 1e-12);
        assert!((e.sqrt_oa() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn query_window_inclusive_bounds() {
        // Entry exactly on the α edge is included (Eq. 7 uses ≤).
        let idx = VarianceIndex::build(vec![
            entry(1, 0, 16.0, 9.0), // d_v = 1, sqrt_ba = 4
            entry(1, 1, 25.0, 9.0), // d_v = 2, sqrt_ba = 5
            entry(1, 2, 36.0, 9.0), // d_v = 3, sqrt_ba = 6
        ]);
        // Query d_v = 2, sqrt_ba = 5, α = 1, β = 1: all three match
        // (d_v in [1,3], sqrt_ba in [4,6]).
        let q = VarianceQuery::new(25.0, 9.0);
        let m = idx.query(&q);
        assert_eq!(m.len(), 3);
        assert_eq!(m[0].entry.key.shot, 1, "exact match ranks first");
    }

    #[test]
    fn eq8_filters_background_variance() {
        // Two shots with the same d_v but very different sqrt_ba: only the
        // near one matches.
        let idx = VarianceIndex::build(vec![
            entry(1, 0, 16.0, 16.0),   // d_v = 0, sqrt_ba = 4
            entry(1, 1, 100.0, 100.0), // d_v = 0, sqrt_ba = 10
        ]);
        let q = VarianceQuery::new(16.0, 16.0);
        let m = idx.query(&q);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].entry.key.shot, 0);
    }

    #[test]
    fn sorted_and_scan_agree() {
        let entries: Vec<IndexEntry> = (0..200)
            .map(|i| {
                let v = f64::from(i);
                entry(i as u64 % 3, i, (v * 0.37) % 40.0, (v * 0.71) % 30.0)
            })
            .collect();
        let idx = VarianceIndex::build(entries);
        for i in 0..40 {
            let q =
                VarianceQuery::new(f64::from(i), f64::from(40 - i) * 0.5).with_tolerances(1.0, 2.0);
            let a = idx.query(&q);
            let b = idx.query_scan(&q);
            assert_eq!(a.len(), b.len(), "query {i}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.entry.key, y.entry.key);
            }
        }
    }

    #[test]
    fn quantized_agrees_with_sorted() {
        let entries: Vec<IndexEntry> = (0..300)
            .map(|i| {
                let v = f64::from(i);
                entry(7, i, (v * 1.31) % 55.0, (v * 0.47) % 25.0)
            })
            .collect();
        let idx = VarianceIndex::build(entries.clone());
        let qidx = QuantizedIndex::build(&entries, 1.0, 1.0);
        for i in 0..30 {
            let q = VarianceQuery::new(f64::from(i * 2), f64::from(i));
            let a = idx.query(&q);
            let b = qidx.query(&q);
            assert_eq!(
                a.iter().map(|m| m.entry.key).collect::<Vec<_>>(),
                b.iter().map(|m| m.entry.key).collect::<Vec<_>>(),
                "query {i}"
            );
        }
    }

    #[test]
    fn insert_maintains_order() {
        let mut idx = VarianceIndex::new();
        for (ba, oa) in [(9.0, 1.0), (1.0, 9.0), (25.0, 25.0), (49.0, 0.0)] {
            idx.insert(entry(1, idx.len() as u32, ba, oa));
        }
        let dvs: Vec<f64> = idx.entries().iter().map(IndexEntry::d_v).collect();
        assert!(dvs.windows(2).all(|w| w[0] <= w[1]), "{dvs:?}");
    }

    #[test]
    fn remove_video_drops_only_that_video() {
        let mut idx = VarianceIndex::build(vec![
            entry(1, 0, 1.0, 1.0),
            entry(2, 0, 2.0, 2.0),
            entry(1, 1, 3.0, 3.0),
        ]);
        assert_eq!(idx.remove_video(1), 2);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.entries()[0].key.video, 2);
    }

    #[test]
    fn empty_index_empty_answers() {
        let idx = VarianceIndex::new();
        assert!(idx.query(&VarianceQuery::new(5.0, 5.0)).is_empty());
        assert!(idx.is_empty());
    }

    #[test]
    fn by_example_returns_the_example_first() {
        let entries: Vec<IndexEntry> = (0..50)
            .map(|i| entry(1, i, f64::from(i) * 2.0, f64::from(i)))
            .collect();
        let idx = VarianceIndex::build(entries.clone());
        let q = VarianceQuery::by_example(crate::variance::ShotFeature {
            var_ba: entries[20].var_ba,
            var_oa: entries[20].var_oa,
        });
        let m = idx.query(&q);
        assert!(!m.is_empty());
        assert_eq!(m[0].entry.key.shot, 20);
        assert_eq!(m[0].distance, 0.0);
    }

    fn ext_entry(shot: u32, var_ba: [f64; 3], var_oa: [f64; 3]) -> ExtendedEntry {
        ExtendedEntry {
            key: ShotKey { video: 1, shot },
            feature: crate::variance::ExtendedShotFeature { var_ba, var_oa },
        }
    }

    #[test]
    fn extended_query_separates_channel_collisions() {
        // Two shots with the same channel-averaged variances but different
        // per-channel distributions: the basic model cannot tell them apart
        // (identical D^v and sqrt BA); the extended model can.
        let red_only = ext_entry(0, [30.0, 0.0, 0.0], [0.0; 3]);
        let spread = ext_entry(1, [10.0, 10.0, 10.0], [0.0; 3]);
        let basic_red = IndexEntry::new(red_only.key, red_only.feature.collapse());
        let basic_spread = IndexEntry::new(spread.key, spread.feature.collapse());
        assert!((basic_red.d_v() - basic_spread.d_v()).abs() < 1e-9);

        let idx = ExtendedIndex::build(vec![red_only, spread]);
        let q = ExtendedQuery::by_example(red_only.feature);
        let hits: Vec<u32> = idx.query(&q).into_iter().map(|(e, _)| e.key.shot).collect();
        assert_eq!(hits, vec![0], "extended query must exclude the collider");
    }

    #[test]
    fn extended_exact_match_first() {
        let entries: Vec<ExtendedEntry> = (0..24)
            .map(|i| {
                let v = f64::from(i);
                ext_entry(i, [v, v * 0.5, v * 0.25], [v * 0.1, 0.0, v * 0.3])
            })
            .collect();
        let idx = ExtendedIndex::build(entries.clone());
        let q = ExtendedQuery::by_example(entries[10].feature);
        let hits = idx.query(&q);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].0.key.shot, 10);
        assert_eq!(hits[0].1, 0.0);
    }

    #[test]
    fn extended_insert_keeps_order() {
        let mut idx = ExtendedIndex::default();
        for i in [5u32, 1, 9, 3] {
            let v = f64::from(i);
            idx.insert(ext_entry(i, [v; 3], [0.0; 3]));
        }
        assert_eq!(idx.len(), 4);
        let q = ExtendedQuery::by_example(crate::variance::ExtendedShotFeature {
            var_ba: [9.0; 3],
            var_oa: [0.0; 3],
        })
        .with_tolerances(100.0, 100.0);
        let hits = idx.query(&q);
        assert_eq!(hits[0].0.key.shot, 9);
        assert!(!idx.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The extended model never matches more than the basic model would
        /// on the same per-channel data... is false in general; what *is*
        /// guaranteed: extended query results all satisfy the per-channel
        /// predicate, and the index agrees with a full scan.
        #[test]
        fn prop_extended_index_equals_scan(
            rows in prop::collection::vec(
                ([0.0f64..40.0, 0.0f64..40.0, 0.0f64..40.0],
                 [0.0f64..40.0, 0.0f64..40.0, 0.0f64..40.0]),
                0..48,
            ),
            qi in 0usize..48,
        ) {
            let entries: Vec<ExtendedEntry> = rows
                .iter()
                .enumerate()
                .map(|(i, (ba, oa))| ext_entry(i as u32, *ba, *oa))
                .collect();
            let idx = ExtendedIndex::build(entries.clone());
            let q = match entries.get(qi.min(entries.len().saturating_sub(1))) {
                Some(e) => ExtendedQuery::by_example(e.feature),
                None => return Ok(()),
            };
            let via_index: Vec<u32> = idx.query(&q).into_iter().map(|(e, _)| e.key.shot).collect();
            let mut via_scan: Vec<(f64, u32)> = entries
                .iter()
                .filter(|e| q.matches(e))
                .map(|e| (q.distance(e), e.key.shot))
                .collect();
            via_scan.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            prop_assert_eq!(via_index, via_scan.into_iter().map(|(_, s)| s).collect::<Vec<_>>());
        }

        /// Every returned match satisfies Eqs. 7–8; every non-returned entry
        /// violates one of them.
        #[test]
        fn prop_query_exactly_the_predicate(
            vars in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 0..64),
            qba in 0.0f64..100.0,
            qoa in 0.0f64..100.0,
            alpha in 0.1f64..5.0,
            beta in 0.1f64..5.0,
        ) {
            let entries: Vec<IndexEntry> = vars
                .iter()
                .enumerate()
                .map(|(i, &(ba, oa))| entry(1, i as u32, ba, oa))
                .collect();
            let idx = VarianceIndex::build(entries.clone());
            let q = VarianceQuery::new(qba, qoa).with_tolerances(alpha, beta);
            let got: std::collections::HashSet<u32> =
                idx.query(&q).iter().map(|m| m.entry.key.shot).collect();
            for e in &entries {
                prop_assert_eq!(got.contains(&e.key.shot), q.matches(e),
                    "entry {:?} vs query {:?}", e, q);
            }
        }

        /// Sorted, scan, and quantized implementations agree on arbitrary data.
        #[test]
        fn prop_three_implementations_agree(
            vars in prop::collection::vec((0.0f64..60.0, 0.0f64..60.0), 0..48),
            qba in 0.0f64..60.0,
            qoa in 0.0f64..60.0,
        ) {
            let entries: Vec<IndexEntry> = vars
                .iter()
                .enumerate()
                .map(|(i, &(ba, oa))| entry(3, i as u32, ba, oa))
                .collect();
            let idx = VarianceIndex::build(entries.clone());
            let qidx = QuantizedIndex::build(&entries, 1.0, 1.0);
            let q = VarianceQuery::new(qba, qoa);
            let a: Vec<u32> = idx.query(&q).iter().map(|m| m.entry.key.shot).collect();
            let b: Vec<u32> = idx.query_scan(&q).iter().map(|m| m.entry.key.shot).collect();
            let c: Vec<u32> = qidx.query(&q).iter().map(|m| m.entry.key.shot).collect();
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(&a, &c);
        }

        /// Results come back nearest-first.
        #[test]
        fn prop_results_sorted_by_distance(
            vars in prop::collection::vec((0.0f64..40.0, 0.0f64..40.0), 0..48),
            qba in 0.0f64..40.0,
            qoa in 0.0f64..40.0,
        ) {
            let entries: Vec<IndexEntry> = vars
                .iter()
                .enumerate()
                .map(|(i, &(ba, oa))| entry(1, i as u32, ba, oa))
                .collect();
            let idx = VarianceIndex::build(entries);
            let m = idx.query(&VarianceQuery::new(qba, qoa));
            prop_assert!(m.windows(2).all(|w| w[0].distance <= w[1].distance));
        }
    }
}
