//! The probe cost model — predicts how much work a bucket probe will do
//! from index parameters plus a small corpus summary, in the spirit of
//! lantern's `hnsw_cost_estimate`: every estimate is pinned by tests
//! against the *measured* [`ProbeStats`](super::bucket::ProbeStats) of
//! the real index.
//!
//! The model is deliberately tiny: a [`CorpusStats`] equi-width histogram
//! of the `D^v` distribution (a few hundred bytes) and the effective
//! bucket width. A range probe's window is widened to the bucket edges
//! it would actually touch, and the candidate count is interpolated from
//! the histogram. The [planner](super::planner) compares the resulting
//! [`CostEstimate::total`] against the linear-scan cost `n` and picks the
//! cheaper side — which is what makes the scan-vs-index crossover a
//! *decision*, not a hardcode.

/// Equi-width histogram summary of a corpus' `D^v` distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusStats {
    n: usize,
    dv_min: f64,
    dv_max: f64,
    bin_width: f64,
    bins: Vec<u32>,
}

impl CorpusStats {
    /// Summarise an ascending (by `total_cmp`) slice of `D^v` values into
    /// `nbins` equi-width bins.
    pub fn from_sorted_dvs(dvs: &[f64], nbins: usize) -> Self {
        let nbins = nbins.clamp(1, 4096);
        let n = dvs.len();
        if n == 0 {
            return CorpusStats {
                n: 0,
                dv_min: 0.0,
                dv_max: 0.0,
                bin_width: 0.0,
                bins: vec![0; nbins],
            };
        }
        // total_cmp sorts NaN above +inf, so finite extrema are a prefix.
        let finite: Vec<f64> = dvs.iter().copied().filter(|d| d.is_finite()).collect();
        let (dv_min, dv_max) = match (finite.first(), finite.last()) {
            (Some(&lo), Some(&hi)) => (lo, hi),
            _ => (0.0, 0.0),
        };
        let span = (dv_max - dv_min).max(0.0);
        let bin_width = span / nbins as f64;
        let mut bins = vec![0u32; nbins];
        for &dv in dvs {
            let b = if bin_width <= 0.0 || !dv.is_finite() {
                0
            } else {
                (((dv - dv_min) / bin_width).floor() as usize).min(nbins - 1)
            };
            bins[b] += 1;
        }
        CorpusStats {
            n,
            dv_min,
            dv_max,
            bin_width,
            bins,
        }
    }

    /// Number of rows summarised.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Smallest finite `D^v` seen.
    pub fn dv_min(&self) -> f64 {
        self.dv_min
    }

    /// Largest finite `D^v` seen.
    pub fn dv_max(&self) -> f64 {
        self.dv_max
    }

    /// Expected number of rows with `D^v ∈ [lo, hi]`, interpolated from
    /// the histogram (fractional bin overlap). Returns 0 for empty or
    /// inverted windows.
    pub fn expected_in_window(&self, lo: f64, hi: f64) -> f64 {
        if self.n == 0 || lo.is_nan() || hi.is_nan() || hi < lo {
            return 0.0;
        }
        if self.bin_width <= 0.0 {
            // Point-mass corpus at dv_min.
            return if lo <= self.dv_min && self.dv_min <= hi {
                self.n as f64
            } else {
                0.0
            };
        }
        let mut expected = 0.0;
        for (i, &count) in self.bins.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let b_lo = self.dv_min + i as f64 * self.bin_width;
            let b_hi = b_lo + self.bin_width;
            let overlap = (hi.min(b_hi) - lo.max(b_lo)).max(0.0);
            expected += overlap / self.bin_width * f64::from(count);
        }
        expected.min(self.n as f64)
    }
}

/// Relative weights of the probe's cost components, in "one candidate
/// scored" units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostWeights {
    /// Fixed per-probe setup (bucket arithmetic, window math).
    pub probe_setup: f64,
    /// Cost of touching one bucket (directory lookup + slice bounds).
    pub bucket_touch: f64,
    /// Cost of scoring one candidate row.
    pub candidate: f64,
    /// Cost of one row under the linear scan (predicate, no directory).
    pub scan_candidate: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        CostWeights {
            probe_setup: 8.0,
            bucket_touch: 2.0,
            candidate: 1.0,
            scan_candidate: 1.0,
        }
    }
}

/// A predicted probe cost, in the same units the planner compares.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Predicted buckets touched.
    pub buckets_touched: f64,
    /// Predicted candidates scored.
    pub candidates: f64,
    /// Scalar cost (`probe_setup + buckets·bucket_touch + candidates·candidate`).
    pub total: f64,
}

/// The estimator: effective bucket width + corpus statistics + weights.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    width: f64,
    stats: CorpusStats,
    weights: CostWeights,
}

impl CostModel {
    /// Build a model for an index with the given *effective* bucket width
    /// over a corpus summarised by `stats`.
    pub fn new(width: f64, stats: CorpusStats, weights: CostWeights) -> Self {
        let width = if width.is_finite() && width > 0.0 {
            width
        } else {
            1.0
        };
        CostModel {
            width,
            stats,
            weights,
        }
    }

    /// The corpus statistics backing the model.
    pub fn stats(&self) -> &CorpusStats {
        &self.stats
    }

    fn finish(&self, buckets: f64, candidates: f64) -> CostEstimate {
        CostEstimate {
            buckets_touched: buckets,
            candidates,
            total: self.weights.probe_setup
                + buckets * self.weights.bucket_touch
                + candidates * self.weights.candidate,
        }
    }

    /// The bucket-edge-snapped `D^v` window a range probe centred at `dq`
    /// with half-width `alpha` actually touches, as `(lo_edge, hi_edge,
    /// buckets)` — the window [`estimate_range`](Self::estimate_range)
    /// prices and the window `explain` reports. `(0, 0, 0)` on an empty
    /// corpus.
    pub fn probe_window(&self, dq: f64, alpha: f64) -> (f64, f64, f64) {
        if self.stats.n() == 0 {
            return (0.0, 0.0, 0.0);
        }
        let alpha = if alpha.is_finite() {
            alpha.max(0.0)
        } else {
            0.0
        };
        let origin = self.stats.dv_min();
        let w = self.width;
        let lo_b = ((dq - alpha - origin) / w).floor();
        let hi_b = ((dq + alpha - origin) / w).floor();
        let (lo_b, hi_b) = if lo_b.is_finite() && hi_b.is_finite() {
            (lo_b, hi_b)
        } else {
            (0.0, 0.0)
        };
        // Clamp to the directory the index actually has.
        let last = ((self.stats.dv_max() - origin) / w).floor().max(0.0);
        let lo_b = lo_b.clamp(0.0, last);
        let hi_b = hi_b.clamp(0.0, last);
        let buckets = (hi_b - lo_b + 1.0).max(1.0);
        (origin + lo_b * w, origin + (hi_b + 1.0) * w, buckets)
    }

    /// Predicted cost of a range probe centred at `dq` with half-width
    /// `alpha` (Eq. 7's window). The window is widened to the bucket
    /// edges the probe would actually touch before consulting the
    /// histogram — the model prices the index's granularity, not the
    /// ideal window.
    pub fn estimate_range(&self, dq: f64, alpha: f64) -> CostEstimate {
        if self.stats.n() == 0 {
            return self.finish(0.0, 0.0);
        }
        let (lo_edge, hi_edge, buckets) = self.probe_window(dq, alpha);
        let candidates = self.stats.expected_in_window(lo_edge, hi_edge);
        self.finish(buckets, candidates)
    }

    /// The `D^v` window a top-k probe centred at `dq` expands to before
    /// the histogram expects ≥ `k` rows inside it, as `(lo, hi,
    /// buckets)` — what [`estimate_topk`](Self::estimate_topk) prices.
    /// `(0, 0, 0)` on an empty corpus or `k == 0`.
    pub fn topk_window(&self, dq: f64, k: usize) -> (f64, f64, f64) {
        let n = self.stats.n();
        if n == 0 || k == 0 {
            return (0.0, 0.0, 0.0);
        }
        let k = k.min(n) as f64;
        let w = self.width;
        let dq = if dq.is_finite() {
            dq
        } else {
            self.stats.dv_min()
        };
        let span = (self.stats.dv_max() - self.stats.dv_min()).max(0.0);
        let max_steps = (span / w).ceil() as usize + 2;
        let mut half = w / 2.0;
        let mut buckets = 1.0;
        let mut expected = self.stats.expected_in_window(dq - half, dq + half);
        let mut steps = 0usize;
        while expected < k && steps < max_steps {
            half += w;
            buckets += 2.0;
            expected = self.stats.expected_in_window(dq - half, dq + half);
            steps += 1;
        }
        (dq - half, dq + half, buckets)
    }

    /// Predicted cost of a top-k probe centred at `dq`: expand the window
    /// one bucket per side until the histogram expects ≥ `k` rows inside
    /// it (or the corpus is exhausted).
    pub fn estimate_topk(&self, dq: f64, k: usize) -> CostEstimate {
        let n = self.stats.n();
        if n == 0 || k == 0 {
            return self.finish(0.0, 0.0);
        }
        let (lo, hi, buckets) = self.topk_window(dq, k);
        let expected = self.stats.expected_in_window(lo, hi);
        self.finish(buckets, expected.max(k.min(n) as f64))
    }

    /// Cost of answering the same query with the linear scan.
    pub fn scan_cost(&self) -> f64 {
        self.stats.n() as f64 * self.weights.scan_candidate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_stats(n: usize, lo: f64, hi: f64) -> CorpusStats {
        let dvs: Vec<f64> = (0..n)
            .map(|i| lo + (hi - lo) * i as f64 / (n - 1).max(1) as f64)
            .collect();
        CorpusStats::from_sorted_dvs(&dvs, 64)
    }

    #[test]
    fn window_expectation_tracks_uniform_density() {
        let stats = uniform_stats(10_000, 0.0, 100.0);
        let expected = stats.expected_in_window(10.0, 20.0);
        let ideal = 1000.0;
        assert!(
            (expected - ideal).abs() < ideal * 0.05,
            "expected {expected} rows in a 10% window"
        );
        assert_eq!(stats.expected_in_window(500.0, 600.0), 0.0);
        assert_eq!(stats.expected_in_window(20.0, 10.0), 0.0);
    }

    #[test]
    fn point_mass_corpus() {
        let dvs = vec![4.0; 50];
        let stats = CorpusStats::from_sorted_dvs(&dvs, 64);
        assert_eq!(stats.expected_in_window(3.0, 5.0), 50.0);
        assert_eq!(stats.expected_in_window(5.0, 6.0), 0.0);
    }

    #[test]
    fn range_cost_monotone_in_alpha() {
        let model = CostModel::new(
            0.5,
            uniform_stats(10_000, 0.0, 100.0),
            CostWeights::default(),
        );
        let mut last = 0.0;
        for alpha in [0.1, 0.5, 1.0, 2.0, 5.0, 20.0] {
            let est = model.estimate_range(50.0, alpha);
            assert!(
                est.total >= last,
                "alpha={alpha}: total {} fell below {last}",
                est.total
            );
            last = est.total;
        }
    }

    #[test]
    fn range_cost_monotone_in_n() {
        let mut last = 0.0;
        for n in [1_000usize, 10_000, 100_000] {
            let model = CostModel::new(0.5, uniform_stats(n, 0.0, 100.0), CostWeights::default());
            let est = model.estimate_range(50.0, 1.0);
            assert!(est.total > last, "n={n}");
            last = est.total;
        }
    }

    #[test]
    fn topk_cost_monotone_in_k() {
        let model = CostModel::new(
            0.5,
            uniform_stats(10_000, 0.0, 100.0),
            CostWeights::default(),
        );
        let mut last = 0.0;
        for k in [1usize, 10, 100, 1000, 10_000] {
            let est = model.estimate_topk(50.0, k);
            assert!(est.total >= last, "k={k}");
            last = est.total;
        }
    }

    #[test]
    fn scan_beats_index_on_tiny_corpus() {
        let model = CostModel::new(0.25, uniform_stats(4, 0.0, 1.0), CostWeights::default());
        assert!(model.scan_cost() < model.estimate_range(0.5, 0.1).total);
    }

    #[test]
    fn index_beats_scan_on_selective_probe() {
        let model = CostModel::new(
            0.5,
            uniform_stats(100_000, 0.0, 100.0),
            CostWeights::default(),
        );
        let est = model.estimate_range(50.0, 1.0);
        assert!(est.total < model.scan_cost() / 10.0);
    }

    #[test]
    fn windows_back_the_estimates_exactly() {
        let model = CostModel::new(
            0.5,
            uniform_stats(10_000, 0.0, 100.0),
            CostWeights::default(),
        );
        let (lo, hi, buckets) = model.probe_window(50.0, 1.3);
        assert!(
            lo < 50.0 - 1.3 + 1e-9 && hi > 50.0 + 1.3 - 1e-9,
            "snapped outward"
        );
        let est = model.estimate_range(50.0, 1.3);
        assert_eq!(est.buckets_touched, buckets);
        assert_eq!(est.candidates, model.stats().expected_in_window(lo, hi));

        let (lo, hi, buckets) = model.topk_window(50.0, 37);
        let est = model.estimate_topk(50.0, 37);
        assert_eq!(est.buckets_touched, buckets);
        assert!(est.candidates >= 37.0);
        assert!(model.stats().expected_in_window(lo, hi) >= 37.0);
    }

    #[test]
    fn empty_corpus_estimates_zero_work() {
        let model = CostModel::new(
            0.5,
            CorpusStats::from_sorted_dvs(&[], 64),
            CostWeights::default(),
        );
        assert_eq!(model.estimate_range(1.0, 1.0).candidates, 0.0);
        assert_eq!(model.estimate_topk(1.0, 5).candidates, 0.0);
        assert_eq!(model.scan_cost(), 0.0);
    }
}
