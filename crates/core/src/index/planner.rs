//! The maintained shot index and its query planner.
//!
//! [`ShotIndex`] is what the store embeds: a [`BucketIndex`] kept current
//! across ingests and removals, a cached [`CostModel`] rebuilt alongside
//! it, and a planner that prices every probe against the linear scan and
//! executes whichever side the estimate favours. The choice, the probe
//! timings, and the work counters all flow into `vdb-obs` under
//! `core.index.*`, which is how the scan-vs-index crossover shows up in
//! BENCH output.
//!
//! Two ingestion modes:
//!
//! * **online** ([`ShotIndex::extend`]) — merge the batch into the sorted
//!   array immediately (one O(n + m) refresh per batch);
//! * **staged** ([`ShotIndex::stage`] + [`ShotIndex::finalize`] /
//!   [`ShotIndex::adopt`]) — the journal-replay path: entries pile up
//!   unsorted, then one refresh builds the index, *or* a persisted copy
//!   whose [fingerprint](fingerprint_entries) matches the staged rows is
//!   adopted without a rebuild. Staged rows are still visible to queries
//!   (they are scanned alongside the bucket probe), so correctness never
//!   depends on finalize discipline — only speed does.

use super::bucket::{entry_order, BucketIndex, BucketParams, ProbeStats};
use super::cost::{CostEstimate, CostModel, CostWeights};
use super::{IndexEntry, Match, VarianceQuery};
use std::cmp::Ordering;
use std::sync::OnceLock;
use vdb_obs::{global, global_tracer, Counter, Histogram, TraceContext};

/// Which executor the planner chose for a probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanChoice {
    /// Linear scan over the whole table.
    Scan,
    /// Bucket-directory probe.
    Buckets,
}

/// A priced decision: the estimate for the bucket probe, the scan cost it
/// was compared against, and the winner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plan {
    /// The executor the probe will use.
    pub choice: PlanChoice,
    /// Predicted bucket-probe cost.
    pub index_cost: CostEstimate,
    /// Cost of the linear scan in the same units.
    pub scan_cost: f64,
}

/// The planner's full decision trail for one *executed* probe — what the
/// `explain` command reports and what a traced probe attaches to its
/// span: the priced plan (estimates in [`Plan::index_cost`]) next to the
/// executor's measured work, so estimated-vs-actual is one comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Explain {
    /// The priced decision the probe executed.
    pub plan: Plan,
    /// The `D^v` window the estimate was priced over, `(lo, hi)` —
    /// bucket-edge-snapped for range probes, k-expanded for top-k.
    pub probe_window: (f64, f64),
    /// Measured work of the executor that ran. For a [`PlanChoice::Scan`]
    /// plan the candidates are the full finalized row count.
    pub probe: ProbeStats,
    /// Staged (unfinalized) rows scanned alongside the probe.
    pub staged_rows: usize,
    /// Finalized rows in the index.
    pub rows: usize,
    /// Matches returned after the staged merge.
    pub matches: usize,
}

impl Explain {
    /// One-line `key=value` rendering (the shape the shell prints and a
    /// traced probe attaches to its span).
    pub fn summary(&self) -> String {
        format!(
            "plan={} est_candidates={:.0} est_buckets={:.0} actual_candidates={} \
             actual_buckets={} window=[{:.3},{:.3}] staged={} rows={} matches={} \
             index_cost={:.0} scan_cost={:.0}",
            match self.plan.choice {
                PlanChoice::Scan => "scan",
                PlanChoice::Buckets => "buckets",
            },
            self.plan.index_cost.candidates,
            self.plan.index_cost.buckets_touched,
            self.probe.candidates,
            self.probe.buckets_touched,
            self.probe_window.0,
            self.probe_window.1,
            self.staged_rows,
            self.rows,
            self.matches,
            self.plan.index_cost.total,
            self.plan.scan_cost,
        )
    }
}

/// Per-instance maintenance counters — unlike the `core.index.*` globals
/// these are not shared across databases, so tests can assert exact
/// counts even when suites run concurrently in one process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexRuntime {
    /// Full (re)builds of the sorted array — merges, finalizes, removals.
    pub refreshes: u64,
    /// Persisted copies adopted wholesale instead of rebuilding.
    pub adoptions: u64,
}

struct IndexObs {
    build_us: Histogram,
    probe_us: Histogram,
    candidates_scored: Counter,
    buckets_touched: Counter,
    plan_scan: Counter,
    plan_bucket: Counter,
    refreshes: Counter,
    adoptions: Counter,
}

fn obs() -> &'static IndexObs {
    static OBS: OnceLock<IndexObs> = OnceLock::new();
    OBS.get_or_init(|| IndexObs {
        build_us: global().histogram("core.index.build_us"),
        probe_us: global().histogram("core.index.probe_us"),
        candidates_scored: global().counter("core.index.candidates_scored"),
        buckets_touched: global().counter("core.index.buckets_touched"),
        plan_scan: global().counter("core.index.plan_scan"),
        plan_bucket: global().counter("core.index.plan_bucket"),
        refreshes: global().counter("core.index.refreshes"),
        adoptions: global().counter("core.index.adoptions"),
    })
}

/// Order-independent fingerprint of an entry set: the wrapping sum of
/// per-entry FNV-1a hashes. Insertion order does not matter, so rows
/// staged from journal replay compare equal to the same rows persisted
/// sorted — and any divergence (extra, missing, or mutated row) almost
/// surely changes the sum.
pub fn fingerprint_entries<'a>(entries: impl Iterator<Item = &'a IndexEntry>) -> u64 {
    let mut sum = 0u64;
    for e in entries {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for word in [
            e.key.video,
            u64::from(e.key.shot),
            e.var_ba.to_bits(),
            e.var_oa.to_bits(),
        ] {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        sum = sum.wrapping_add(h);
    }
    sum
}

/// The maintained, planner-routed shot index.
#[derive(Debug, Clone)]
pub struct ShotIndex {
    params: BucketParams,
    weights: CostWeights,
    bucket: BucketIndex,
    model: CostModel,
    staged: Vec<IndexEntry>,
    runtime: IndexRuntime,
}

impl Default for ShotIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl ShotIndex {
    /// An empty index with default parameters.
    pub fn new() -> Self {
        Self::with_params(BucketParams::default())
    }

    /// An empty index with explicit bucket parameters.
    pub fn with_params(params: BucketParams) -> Self {
        let bucket = BucketIndex::build(Vec::new(), params);
        let model = CostModel::new(
            bucket.effective_width(),
            bucket.stats().clone(),
            CostWeights::default(),
        );
        ShotIndex {
            params,
            weights: CostWeights::default(),
            bucket,
            model,
            staged: Vec::new(),
            runtime: IndexRuntime::default(),
        }
    }

    /// Build directly from a batch of entries.
    pub fn from_entries(entries: Vec<IndexEntry>, params: BucketParams) -> Self {
        let mut idx = Self::with_params(params);
        idx.extend(entries);
        idx
    }

    /// Rows indexed (finalized + staged).
    pub fn len(&self) -> usize {
        self.bucket.len() + self.staged.len()
    }

    /// Whether no rows are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finalized rows, sorted by `(D^v, key)`. Staged-but-unfinalized
    /// rows are not included — call [`Self::finalize`] first.
    pub fn entries(&self) -> &[IndexEntry] {
        debug_assert!(
            self.staged.is_empty(),
            "entries() read with {} rows still staged",
            self.staged.len()
        );
        self.bucket.entries()
    }

    /// Whether every staged row has been merged into the sorted array —
    /// i.e. [`Self::entries`] currently describes the full row set.
    pub fn is_finalized(&self) -> bool {
        self.staged.is_empty()
    }

    /// The bucket parameters in force.
    pub fn params(&self) -> BucketParams {
        self.params
    }

    /// The underlying sorted bucket array.
    pub fn bucket(&self) -> &BucketIndex {
        &self.bucket
    }

    /// The cost model the planner consults (rebuilt on every refresh).
    pub fn cost_model(&self) -> &CostModel {
        &self.model
    }

    /// Per-instance maintenance counters.
    pub fn runtime(&self) -> IndexRuntime {
        self.runtime
    }

    /// Fingerprint of the full row set (finalized + staged); what the
    /// store persists next to the index payload.
    pub fn fingerprint(&self) -> u64 {
        fingerprint_entries(self.bucket.entries().iter().chain(self.staged.iter()))
    }

    /// Insert one row (merges immediately; prefer [`Self::extend`] for
    /// batches and [`Self::stage`] for replay).
    pub fn insert(&mut self, entry: IndexEntry) {
        self.extend(vec![entry]);
    }

    /// Merge a batch into the sorted array (one refresh).
    pub fn extend(&mut self, batch: Vec<IndexEntry>) {
        if batch.is_empty() {
            return;
        }
        self.staged.extend(batch);
        self.refresh();
    }

    /// Queue rows without rebuilding — the journal-replay path. Staged
    /// rows remain queryable (scanned alongside the bucket probe).
    pub fn stage(&mut self, batch: impl IntoIterator<Item = IndexEntry>) {
        self.staged.extend(batch);
    }

    /// Merge anything staged into the sorted array. No-op when nothing is
    /// staged.
    pub fn finalize(&mut self) {
        if !self.staged.is_empty() {
            self.refresh();
        }
    }

    /// Adopt a persisted copy of the index instead of rebuilding, if its
    /// row set matches what is currently staged + finalized (verified by
    /// [fingerprint](fingerprint_entries)). Returns `false` — leaving the
    /// index untouched, caller should [`Self::finalize`] — on mismatch.
    pub fn adopt(&mut self, entries: Vec<IndexEntry>) -> bool {
        if fingerprint_entries(entries.iter()) != self.fingerprint() {
            return false;
        }
        let mut rows: Vec<(f64, IndexEntry)> = entries.into_iter().map(|e| (e.d_v(), e)).collect();
        if !rows
            .windows(2)
            .all(|w| entry_order(&w[0], &w[1]) != Ordering::Greater)
        {
            rows.sort_by(entry_order);
        }
        self.bucket = BucketIndex::from_sorted_rows(rows, self.params);
        self.rebuild_model();
        self.staged.clear();
        self.runtime.adoptions += 1;
        obs().adoptions.incr();
        true
    }

    /// Drop every row of `video`. Returns how many were removed.
    pub fn remove_video(&mut self, video: u64) -> usize {
        let staged_before = self.staged.len();
        self.staged.retain(|e| e.key.video != video);
        let mut removed = staged_before - self.staged.len();
        let kept: Vec<(f64, IndexEntry)> = self
            .bucket
            .sorted_rows()
            .filter(|(_, e)| e.key.video != video)
            .collect();
        if kept.len() != self.bucket.len() {
            removed += self.bucket.len() - kept.len();
            let _span = obs().build_us.start();
            self.bucket = BucketIndex::from_sorted_rows(kept, self.params);
            self.rebuild_model();
            self.runtime.refreshes += 1;
            obs().refreshes.incr();
        }
        removed
    }

    fn refresh(&mut self) {
        let _span = obs().build_us.start();
        let mut fresh: Vec<(f64, IndexEntry)> =
            self.staged.drain(..).map(|e| (e.d_v(), e)).collect();
        fresh.sort_by(entry_order);
        let mut merged = Vec::with_capacity(self.bucket.len() + fresh.len());
        let mut old = self.bucket.sorted_rows().peekable();
        let mut new = fresh.into_iter().peekable();
        loop {
            match (old.peek(), new.peek()) {
                (Some(a), Some(b)) => {
                    if entry_order(a, b) != Ordering::Greater {
                        merged.push(old.next().unwrap());
                    } else {
                        merged.push(new.next().unwrap());
                    }
                }
                (Some(_), None) => merged.push(old.next().unwrap()),
                (None, Some(_)) => merged.push(new.next().unwrap()),
                (None, None) => break,
            }
        }
        drop(old);
        self.bucket = BucketIndex::from_sorted_rows(merged, self.params);
        self.rebuild_model();
        self.runtime.refreshes += 1;
        obs().refreshes.incr();
    }

    fn rebuild_model(&mut self) {
        self.model = CostModel::new(
            self.bucket.effective_width(),
            self.bucket.stats().clone(),
            self.weights,
        );
    }

    /// Price a range probe without running it.
    pub fn plan_range(&self, q: &VarianceQuery) -> Plan {
        let index_cost = self.model.estimate_range(q.d_v(), q.alpha);
        let scan_cost = self.model.scan_cost();
        Plan {
            choice: if index_cost.total <= scan_cost {
                PlanChoice::Buckets
            } else {
                PlanChoice::Scan
            },
            index_cost,
            scan_cost,
        }
    }

    /// Price a top-k probe without running it.
    pub fn plan_topk(&self, q: &VarianceQuery, k: usize) -> Plan {
        let index_cost = self.model.estimate_topk(q.d_v(), k);
        let scan_cost = self.model.scan_cost();
        Plan {
            choice: if index_cost.total <= scan_cost {
                PlanChoice::Buckets
            } else {
                PlanChoice::Scan
            },
            index_cost,
            scan_cost,
        }
    }

    /// Eqs. 7–8 range query, routed through the planner. Results sorted
    /// by ascending `(distance, key)` — identical to [`Self::query_scan`].
    pub fn query(&self, q: &VarianceQuery) -> Vec<Match> {
        self.run_range(q, &TraceContext::disabled()).0
    }

    /// [`Self::query`] with a `core.index.probe` span (carrying the
    /// explain payload as attributes) opened under `ctx`.
    pub fn query_traced(&self, q: &VarianceQuery, ctx: &TraceContext) -> Vec<Match> {
        self.run_range(q, ctx).0
    }

    /// [`Self::query`] plus the planner's full [`Explain`] decision
    /// trail. The probe itself is byte-identical to `query` — explain
    /// never changes what executes.
    pub fn query_explain(&self, q: &VarianceQuery) -> (Vec<Match>, Explain) {
        self.run_range(q, &TraceContext::disabled())
    }

    /// [`Self::query_explain`] with the probe span opened under `ctx`.
    pub fn query_explain_traced(
        &self,
        q: &VarianceQuery,
        ctx: &TraceContext,
    ) -> (Vec<Match>, Explain) {
        self.run_range(q, ctx)
    }

    fn run_range(&self, q: &VarianceQuery, ctx: &TraceContext) -> (Vec<Match>, Explain) {
        let plan = self.plan_range(q);
        let (lo, hi, _) = self.model.probe_window(q.d_v(), q.alpha);
        let o = obs();
        let mut tspan = global_tracer().span(ctx, "core.index.probe");
        let _span = o.probe_us.start();
        let (matches, stats) = match plan.choice {
            PlanChoice::Buckets => {
                o.plan_bucket.incr();
                self.bucket.range_with_stats(q)
            }
            PlanChoice::Scan => {
                o.plan_scan.incr();
                self.bucket.range_scan_with_stats(q)
            }
        };
        o.buckets_touched.add(stats.buckets_touched as u64);
        o.candidates_scored
            .add((stats.candidates + self.staged.len()) as u64);
        let matches = self.merge_staged_range(q, matches);
        let explain = Explain {
            plan,
            probe_window: (lo, hi),
            probe: stats,
            staged_rows: self.staged.len(),
            rows: self.bucket.len(),
            matches: matches.len(),
        };
        if tspan.is_recording() {
            tspan.attr("explain", explain.summary());
        }
        (matches, explain)
    }

    /// Forced linear scan (the pinning reference for equivalence tests).
    pub fn query_scan(&self, q: &VarianceQuery) -> Vec<Match> {
        let (matches, _) = self.bucket.range_scan_with_stats(q);
        self.merge_staged_range(q, matches)
    }

    /// The `k` nearest rows to the query point in `(D^v, √Var^BA)` space
    /// (α/β ignored), routed through the planner. Ties by ascending key.
    pub fn query_topk(&self, q: &VarianceQuery, k: usize) -> Vec<Match> {
        self.run_topk(q, k, &TraceContext::disabled()).0
    }

    /// [`Self::query_topk`] with a `core.index.probe` span (carrying the
    /// explain payload as attributes) opened under `ctx`.
    pub fn query_topk_traced(&self, q: &VarianceQuery, k: usize, ctx: &TraceContext) -> Vec<Match> {
        self.run_topk(q, k, ctx).0
    }

    /// [`Self::query_topk`] plus the planner's [`Explain`] decision
    /// trail (execution unchanged).
    pub fn query_topk_explain(&self, q: &VarianceQuery, k: usize) -> (Vec<Match>, Explain) {
        self.run_topk(q, k, &TraceContext::disabled())
    }

    /// [`Self::query_topk_explain`] with the probe span opened under
    /// `ctx`.
    pub fn query_topk_explain_traced(
        &self,
        q: &VarianceQuery,
        k: usize,
        ctx: &TraceContext,
    ) -> (Vec<Match>, Explain) {
        self.run_topk(q, k, ctx)
    }

    fn run_topk(&self, q: &VarianceQuery, k: usize, ctx: &TraceContext) -> (Vec<Match>, Explain) {
        let plan = self.plan_topk(q, k);
        let (lo, hi, _) = self.model.topk_window(q.d_v(), k);
        let o = obs();
        let mut tspan = global_tracer().span(ctx, "core.index.probe");
        let _span = o.probe_us.start();
        let (matches, stats) = match plan.choice {
            PlanChoice::Buckets => {
                o.plan_bucket.incr();
                self.bucket.topk_with_stats(q, k)
            }
            PlanChoice::Scan => {
                o.plan_scan.incr();
                self.bucket.topk_scan_with_stats(q, k)
            }
        };
        o.buckets_touched.add(stats.buckets_touched as u64);
        o.candidates_scored
            .add((stats.candidates + self.staged.len()) as u64);
        let matches = self.merge_staged_topk(q, k, matches);
        let explain = Explain {
            plan,
            probe_window: (lo, hi),
            probe: stats,
            staged_rows: self.staged.len(),
            rows: self.bucket.len(),
            matches: matches.len(),
        };
        if tspan.is_recording() {
            tspan.attr("explain", explain.summary());
        }
        (matches, explain)
    }

    /// Forced linear-scan top-k (the pinning reference).
    pub fn query_topk_scan(&self, q: &VarianceQuery, k: usize) -> Vec<Match> {
        let (matches, _) = self.bucket.topk_scan_with_stats(q, k);
        self.merge_staged_topk(q, k, matches)
    }

    /// Probe the bucket executor directly and report its work — the
    /// measured side of the cost-model accuracy suite.
    pub fn probe_range(&self, q: &VarianceQuery) -> (Vec<Match>, ProbeStats) {
        self.bucket.range_with_stats(q)
    }

    /// Probe the bucket top-k executor directly with its work accounting.
    pub fn probe_topk(&self, q: &VarianceQuery, k: usize) -> (Vec<Match>, ProbeStats) {
        self.bucket.topk_with_stats(q, k)
    }

    fn merge_staged_range(&self, q: &VarianceQuery, mut matches: Vec<Match>) -> Vec<Match> {
        if self.staged.is_empty() {
            return matches;
        }
        let dq = q.d_v();
        let sq = q.var_ba.sqrt();
        for e in &self.staged {
            if q.matches(e) {
                let distance = ((e.d_v() - dq).powi(2) + (e.sqrt_ba() - sq).powi(2)).sqrt();
                matches.push(Match {
                    entry: *e,
                    distance,
                });
            }
        }
        matches.sort_by(|a, b| {
            a.distance
                .total_cmp(&b.distance)
                .then(a.entry.key.cmp(&b.entry.key))
        });
        matches
    }

    fn merge_staged_topk(
        &self,
        q: &VarianceQuery,
        k: usize,
        mut matches: Vec<Match>,
    ) -> Vec<Match> {
        if self.staged.is_empty() {
            return matches;
        }
        let dq = q.d_v();
        let sq = q.var_ba.sqrt();
        for e in &self.staged {
            let distance = ((e.d_v() - dq).powi(2) + (e.sqrt_ba() - sq).powi(2)).sqrt();
            matches.push(Match {
                entry: *e,
                distance,
            });
        }
        matches.sort_by(|a, b| {
            a.distance
                .total_cmp(&b.distance)
                .then(a.entry.key.cmp(&b.entry.key))
        });
        matches.truncate(k);
        matches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::ShotKey;

    fn entry(video: u64, shot: u32, var_ba: f64, var_oa: f64) -> IndexEntry {
        IndexEntry {
            key: ShotKey { video, shot },
            var_ba,
            var_oa,
        }
    }

    fn corpus(n: usize) -> Vec<IndexEntry> {
        (0..n)
            .map(|i| {
                let x = i as f64;
                entry(
                    (i % 7) as u64,
                    i as u32,
                    (x * 0.931) % 50.0,
                    (x * 0.417) % 30.0,
                )
            })
            .collect()
    }

    #[test]
    fn planner_prefers_buckets_on_large_corpus_and_scan_on_tiny() {
        let big = ShotIndex::from_entries(corpus(100_000), BucketParams::default());
        let q = VarianceQuery::new(20.0, 5.0);
        assert_eq!(big.plan_range(&q).choice, PlanChoice::Buckets);
        assert_eq!(big.plan_topk(&q, 10).choice, PlanChoice::Buckets);

        let tiny = ShotIndex::from_entries(corpus(4), BucketParams::default());
        assert_eq!(tiny.plan_range(&q).choice, PlanChoice::Scan);
    }

    #[test]
    fn planned_query_equals_forced_scan() {
        let idx = ShotIndex::from_entries(corpus(5_000), BucketParams::default());
        for i in 0..20 {
            let q = VarianceQuery::new(f64::from(i) * 2.3, f64::from(i) * 1.1)
                .with_tolerances(2.0, 3.0);
            let keys = |ms: &[Match]| ms.iter().map(|m| m.entry.key).collect::<Vec<_>>();
            assert_eq!(keys(&idx.query(&q)), keys(&idx.query_scan(&q)));
            assert_eq!(
                keys(&idx.query_topk(&q, 7)),
                keys(&idx.query_topk_scan(&q, 7))
            );
        }
    }

    #[test]
    fn staged_rows_are_queryable_before_finalize() {
        let mut idx = ShotIndex::from_entries(corpus(100), BucketParams::default());
        let refreshes = idx.runtime().refreshes;
        idx.stage([entry(999, 0, 10.0, 10.0)]);
        assert_eq!(idx.runtime().refreshes, refreshes, "stage must not rebuild");
        let q = VarianceQuery::new(10.0, 10.0);
        assert!(idx.query(&q).iter().any(|m| m.entry.key.video == 999));
        assert!(idx
            .query_topk(&q, 1)
            .iter()
            .any(|m| m.entry.key.video == 999));
        idx.finalize();
        assert_eq!(idx.runtime().refreshes, refreshes + 1);
        assert!(idx.query(&q).iter().any(|m| m.entry.key.video == 999));
    }

    #[test]
    fn adopt_accepts_matching_rows_and_rejects_divergent_ones() {
        let rows = corpus(500);
        let mut idx = ShotIndex::new();
        idx.stage(rows.clone());
        // Persisted copy was saved sorted; shuffle order must not matter.
        let mut persisted = rows.clone();
        persisted.reverse();
        assert!(idx.adopt(persisted));
        assert_eq!(
            idx.runtime(),
            IndexRuntime {
                refreshes: 0,
                adoptions: 1
            }
        );
        assert_eq!(idx.len(), 500);

        let mut divergent = rows;
        divergent.pop();
        let mut idx2 = ShotIndex::new();
        idx2.stage(divergent.clone());
        divergent.push(entry(1234, 0, 1.0, 1.0));
        assert!(!idx2.adopt(divergent));
        assert_eq!(idx2.runtime().adoptions, 0);
        idx2.finalize();
        assert_eq!(idx2.runtime().refreshes, 1);
    }

    #[test]
    fn fingerprint_is_order_independent_and_content_sensitive() {
        let rows = corpus(64);
        let mut reversed = rows.clone();
        reversed.reverse();
        assert_eq!(
            fingerprint_entries(rows.iter()),
            fingerprint_entries(reversed.iter())
        );
        let mut mutated = rows.clone();
        mutated[10].var_ba += 1e-9;
        assert_ne!(
            fingerprint_entries(rows.iter()),
            fingerprint_entries(mutated.iter())
        );
    }

    #[test]
    fn remove_video_drops_rows_everywhere() {
        let mut idx = ShotIndex::from_entries(corpus(70), BucketParams::default());
        idx.stage([entry(3, 900, 1.0, 1.0)]);
        let before = idx.len();
        let removed = idx.remove_video(3);
        assert!(removed > 1);
        assert_eq!(idx.len(), before - removed);
        idx.finalize();
        assert!(idx.entries().iter().all(|e| e.key.video != 3));
    }

    #[test]
    fn explain_reports_the_probe_that_ran_without_changing_it() {
        let mut idx = ShotIndex::from_entries(corpus(20_000), BucketParams::default());
        idx.stage([entry(999, 0, 20.0, 5.0)]);
        let q = VarianceQuery::new(20.0, 5.0).with_tolerances(1.0, 1.0);
        let (matches, ex) = idx.query_explain(&q);
        assert_eq!(matches, idx.query(&q), "explain must not change the query");
        assert_eq!(ex.plan, idx.plan_range(&q));
        assert_eq!(ex.matches, matches.len());
        assert_eq!(ex.staged_rows, 1);
        assert_eq!(ex.rows, 20_000);
        // The reported estimate is exactly the cost model's, and the
        // reported actuals are exactly the executor's.
        let est = idx.cost_model().estimate_range(q.d_v(), q.alpha);
        assert_eq!(ex.plan.index_cost, est);
        if ex.plan.choice == PlanChoice::Buckets {
            let (_, stats) = idx.probe_range(&q);
            assert_eq!(ex.probe, stats);
        }
        let s = ex.summary();
        for key in [
            "plan=",
            "est_candidates=",
            "actual_candidates=",
            "window=[",
            "scan_cost=",
        ] {
            assert!(s.contains(key), "summary missing {key}: {s}");
        }

        let (_, tex) = idx.query_topk_explain(&q, 5);
        assert_eq!(tex.plan, idx.plan_topk(&q, 5));
        assert_eq!(tex.matches, 5);
    }

    #[test]
    fn traced_query_records_a_probe_span_with_explain_attrs() {
        let idx = ShotIndex::from_entries(corpus(5_000), BucketParams::default());
        let tracer = vdb_obs::global_tracer();
        let before = tracer.recorder().total_recorded();
        let root = tracer.trace_root_forced();
        let q = VarianceQuery::new(10.0, 5.0);
        assert_eq!(idx.query_traced(&q, &root), idx.query(&q));
        assert_eq!(idx.query_topk_traced(&q, 3, &root), idx.query_topk(&q, 3));
        let events = tracer.recorder().events_for(root.trace_id);
        assert_eq!(events.len(), 2, "two probes recorded");
        assert!(events.iter().all(|e| e.name == "core.index.probe"));
        assert!(events.iter().all(|e| e.attrs.starts_with("explain=plan=")));
        assert!(tracer.recorder().total_recorded() >= before + 2);
        // Unsampled context: nothing recorded.
        let after = tracer.recorder().total_recorded();
        idx.query_traced(&q, &TraceContext::disabled());
        assert_eq!(tracer.recorder().total_recorded(), after);
    }

    #[test]
    fn incremental_extend_matches_one_shot_build() {
        let rows = corpus(300);
        let whole = ShotIndex::from_entries(rows.clone(), BucketParams::default());
        let mut grown = ShotIndex::new();
        for chunk in rows.chunks(37) {
            grown.extend(chunk.to_vec());
        }
        assert_eq!(whole.entries(), grown.entries());
        assert_eq!(whole.fingerprint(), grown.fingerprint());
    }
}
