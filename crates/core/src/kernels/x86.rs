//! SSE2 and AVX2 bodies of the vertical 5-tap kernel.
//!
//! Both follow the same shape: load `LANES` bytes from each of the five
//! rows, widen to `u16` half-vectors (zero-extension via unpack), build the
//! accumulator with shifts (`4x = x << 2`, `6x = (x << 2) + (x << 1)` —
//! no multiplies), add the rounding 8, shift right 4, and narrow back with
//! a saturating pack that is exact because every result is ≤ 255. The
//! remainder (`len % LANES`) runs the scalar reference loop.
//!
//! The unpack/pack pairing preserves byte order on AVX2 as well:
//! `unpacklo/hi` and `packus` both operate per 128-bit lane, so bytes
//! re-interleave into their original positions.

#![deny(unsafe_op_in_unsafe_fn)]

use super::reduce_rows5_scalar_from;
use core::arch::x86_64::*;

/// SSE2 variant: 16 bytes per iteration.
///
/// # Safety
/// Caller must guarantee the CPU supports SSE2 (guaranteed on `x86_64`,
/// witnessed by `ResolvedIsa`) and that all six slices share one length.
#[target_feature(enable = "sse2")]
pub(super) unsafe fn reduce_rows5_sse2(
    r0: &[u8],
    r1: &[u8],
    r2: &[u8],
    r3: &[u8],
    r4: &[u8],
    out: &mut [u8],
) {
    let n = out.len();
    let mut j = 0usize;
    // SAFETY: every pointer access below reads/writes bytes `j..j + 16`
    // with `j + 16 <= n`, inside slices of length `n` (asserted by the
    // dispatcher). The loads/stores are the unaligned variants.
    unsafe {
        let zero = _mm_setzero_si128();
        let eight = _mm_set1_epi16(8);
        while j + 16 <= n {
            let a = _mm_loadu_si128(r0.as_ptr().add(j).cast());
            let b = _mm_loadu_si128(r1.as_ptr().add(j).cast());
            let c = _mm_loadu_si128(r2.as_ptr().add(j).cast());
            let d = _mm_loadu_si128(r3.as_ptr().add(j).cast());
            let e = _mm_loadu_si128(r4.as_ptr().add(j).cast());

            let bd_lo = _mm_add_epi16(_mm_unpacklo_epi8(b, zero), _mm_unpacklo_epi8(d, zero));
            let c_lo = _mm_unpacklo_epi8(c, zero);
            let mut lo = _mm_add_epi16(_mm_unpacklo_epi8(a, zero), _mm_unpacklo_epi8(e, zero));
            lo = _mm_add_epi16(lo, _mm_slli_epi16(bd_lo, 2));
            lo = _mm_add_epi16(
                lo,
                _mm_add_epi16(_mm_slli_epi16(c_lo, 2), _mm_slli_epi16(c_lo, 1)),
            );
            lo = _mm_srli_epi16(_mm_add_epi16(lo, eight), 4);

            let bd_hi = _mm_add_epi16(_mm_unpackhi_epi8(b, zero), _mm_unpackhi_epi8(d, zero));
            let c_hi = _mm_unpackhi_epi8(c, zero);
            let mut hi = _mm_add_epi16(_mm_unpackhi_epi8(a, zero), _mm_unpackhi_epi8(e, zero));
            hi = _mm_add_epi16(hi, _mm_slli_epi16(bd_hi, 2));
            hi = _mm_add_epi16(
                hi,
                _mm_add_epi16(_mm_slli_epi16(c_hi, 2), _mm_slli_epi16(c_hi, 1)),
            );
            hi = _mm_srli_epi16(_mm_add_epi16(hi, eight), 4);

            _mm_storeu_si128(out.as_mut_ptr().add(j).cast(), _mm_packus_epi16(lo, hi));
            j += 16;
        }
    }
    reduce_rows5_scalar_from(r0, r1, r2, r3, r4, out, j);
}

/// AVX2 variant: 32 bytes per iteration.
///
/// # Safety
/// Caller must guarantee the CPU supports AVX2 (witnessed by
/// `ResolvedIsa`) and that all six slices share one length.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn reduce_rows5_avx2(
    r0: &[u8],
    r1: &[u8],
    r2: &[u8],
    r3: &[u8],
    r4: &[u8],
    out: &mut [u8],
) {
    let n = out.len();
    let mut j = 0usize;
    // SAFETY: accesses cover bytes `j..j + 32` with `j + 32 <= n`, inside
    // slices of length `n` (asserted by the dispatcher); unaligned
    // load/store variants throughout.
    unsafe {
        let zero = _mm256_setzero_si256();
        let eight = _mm256_set1_epi16(8);
        while j + 32 <= n {
            let a = _mm256_loadu_si256(r0.as_ptr().add(j).cast());
            let b = _mm256_loadu_si256(r1.as_ptr().add(j).cast());
            let c = _mm256_loadu_si256(r2.as_ptr().add(j).cast());
            let d = _mm256_loadu_si256(r3.as_ptr().add(j).cast());
            let e = _mm256_loadu_si256(r4.as_ptr().add(j).cast());

            let bd_lo =
                _mm256_add_epi16(_mm256_unpacklo_epi8(b, zero), _mm256_unpacklo_epi8(d, zero));
            let c_lo = _mm256_unpacklo_epi8(c, zero);
            let mut lo =
                _mm256_add_epi16(_mm256_unpacklo_epi8(a, zero), _mm256_unpacklo_epi8(e, zero));
            lo = _mm256_add_epi16(lo, _mm256_slli_epi16(bd_lo, 2));
            lo = _mm256_add_epi16(
                lo,
                _mm256_add_epi16(_mm256_slli_epi16(c_lo, 2), _mm256_slli_epi16(c_lo, 1)),
            );
            lo = _mm256_srli_epi16(_mm256_add_epi16(lo, eight), 4);

            let bd_hi =
                _mm256_add_epi16(_mm256_unpackhi_epi8(b, zero), _mm256_unpackhi_epi8(d, zero));
            let c_hi = _mm256_unpackhi_epi8(c, zero);
            let mut hi =
                _mm256_add_epi16(_mm256_unpackhi_epi8(a, zero), _mm256_unpackhi_epi8(e, zero));
            hi = _mm256_add_epi16(hi, _mm256_slli_epi16(bd_hi, 2));
            hi = _mm256_add_epi16(
                hi,
                _mm256_add_epi16(_mm256_slli_epi16(c_hi, 2), _mm256_slli_epi16(c_hi, 1)),
            );
            hi = _mm256_srli_epi16(_mm256_add_epi16(hi, eight), 4);

            _mm256_storeu_si256(out.as_mut_ptr().add(j).cast(), _mm256_packus_epi16(lo, hi));
            j += 32;
        }
    }
    reduce_rows5_scalar_from(r0, r1, r2, r3, r4, out, j);
}
