//! NEON body of the vertical 5-tap kernel (`aarch64`).
//!
//! Same arithmetic as the x86 variants: widen each 16-byte row load to two
//! `u16x8` halves, accumulate `a + 4(b + d) + 6c + e + 8` with shifts,
//! shift right 4, and narrow back. `vmovn_u16` (truncating narrow) is
//! exact because every result is ≤ 255. Remainder bytes run the scalar
//! reference loop.

#![deny(unsafe_op_in_unsafe_fn)]

use super::reduce_rows5_scalar_from;
use core::arch::aarch64::*;

/// NEON variant: 16 bytes per iteration.
///
/// # Safety
/// Caller must guarantee the CPU supports NEON (baseline on `aarch64`,
/// witnessed by `ResolvedIsa`) and that all six slices share one length.
#[target_feature(enable = "neon")]
pub(super) unsafe fn reduce_rows5_neon(
    r0: &[u8],
    r1: &[u8],
    r2: &[u8],
    r3: &[u8],
    r4: &[u8],
    out: &mut [u8],
) {
    let n = out.len();
    let mut j = 0usize;
    // SAFETY: accesses cover bytes `j..j + 16` with `j + 16 <= n`, inside
    // slices of length `n` (asserted by the dispatcher).
    unsafe {
        let eight = vdupq_n_u16(8);
        while j + 16 <= n {
            let a = vld1q_u8(r0.as_ptr().add(j));
            let b = vld1q_u8(r1.as_ptr().add(j));
            let c = vld1q_u8(r2.as_ptr().add(j));
            let d = vld1q_u8(r3.as_ptr().add(j));
            let e = vld1q_u8(r4.as_ptr().add(j));

            let bd_lo = vaddl_u8(vget_low_u8(b), vget_low_u8(d));
            let c_lo = vmovl_u8(vget_low_u8(c));
            let mut lo = vaddl_u8(vget_low_u8(a), vget_low_u8(e));
            lo = vaddq_u16(lo, vshlq_n_u16(bd_lo, 2));
            lo = vaddq_u16(lo, vaddq_u16(vshlq_n_u16(c_lo, 2), vshlq_n_u16(c_lo, 1)));
            lo = vshrq_n_u16(vaddq_u16(lo, eight), 4);

            let bd_hi = vaddl_u8(vget_high_u8(b), vget_high_u8(d));
            let c_hi = vmovl_u8(vget_high_u8(c));
            let mut hi = vaddl_u8(vget_high_u8(a), vget_high_u8(e));
            hi = vaddq_u16(hi, vshlq_n_u16(bd_hi, 2));
            hi = vaddq_u16(hi, vaddq_u16(vshlq_n_u16(c_hi, 2), vshlq_n_u16(c_hi, 1)));
            hi = vshrq_n_u16(vaddq_u16(hi, eight), 4);

            vst1q_u8(
                out.as_mut_ptr().add(j),
                vcombine_u8(vmovn_u16(lo), vmovn_u16(hi)),
            );
            j += 16;
        }
    }
    reduce_rows5_scalar_from(r0, r1, r2, r3, r4, out, j);
}
