//! The extraction kernels: vertical 5-tap reduction, crop gather, and the
//! grid collapse built from them — scalar reference code plus `core::arch`
//! SIMD variants dispatched by a [`ResolvedIsa`] witness.
//!
//! # What runs here
//!
//! Per-frame extraction spends essentially all of its time in two loops:
//!
//! 1. **Crop**: sampling the frame into the TBA/FOA grids. The
//!    nearest-neighbor back-projection (two `f64` multiplies per cell) is
//!    identical for every frame of a layout, so
//!    [`crate::geometry::AreaLayout`] precomputes it once into an index
//!    table and the per-frame work collapses to [`gather_pixels`] — a pure
//!    memory gather of 3-byte pixels. There is no SIMD variant: scattered
//!    3-byte loads defeat vector gathers, and the loop is memory-bound.
//! 2. **Reduce**: collapsing grid rows five at a time with the
//!    Burt–Adelson kernel `(1,4,6,4,1)/16` (§2.1). [`reduce_rows5`] does
//!    one such step across all columns — per output byte
//!    `(a + 4b + 6c + 4d + e + 8) >> 4` — which is the vectorized hot loop:
//!    contiguous `u8` lanes widened to `u16` (max accumulator
//!    `255·16 + 8 = 4088`, far below `u16::MAX`), then narrowed back.
//!
//! # Bit-identity
//!
//! Every variant computes the exact expression of the scalar reference:
//! the scalar path's `(acc + 8) / 16` on `u32` equals `(acc + 8) >> 4` on
//! `u16` for all attainable `acc`, and the final u16→u8 narrowing is exact
//! because results never exceed 255 (weights sum to 16). The per-level
//! equivalence suites assert this end to end; the unit tests here assert
//! it per kernel, including odd lengths that exercise the scalar tails.
//!
//! # Safety model
//!
//! The `unsafe` target-feature bodies live in the arch submodules and are
//! only reachable through the safe dispatchers in this module, which
//! require a [`ResolvedIsa`] — a witness constructible solely via runtime
//! feature detection (see [`crate::simd`]). Lane loads/stores stay within
//! `i + LANES <= len` and remainders run the scalar tail, so no access
//! leaves the slices.

#[cfg(target_arch = "aarch64")]
mod neon;
#[cfg(target_arch = "x86_64")]
mod x86;

use crate::pixel::{rgb_as_bytes, rgb_as_bytes_mut, Rgb};
use crate::simd::{Kind, ResolvedIsa};
use crate::sizeset::in_size_set;

/// One vertical pyramid step across all columns of five equal-length byte
/// rows: `out[j] = (r0[j] + 4·r1[j] + 6·r2[j] + 4·r3[j] + r4[j] + 8) >> 4`.
///
/// Rows are raw channel bytes (see [`rgb_as_bytes`]); the kernel is
/// channel-oblivious because the weights apply per byte position. Runs the
/// instruction set named by `isa`, with identical results at every level.
///
/// # Panics
/// If the five rows and `out` do not all share one length.
pub fn reduce_rows5(isa: ResolvedIsa, rows: [&[u8]; 5], out: &mut [u8]) {
    let [r0, r1, r2, r3, r4] = rows;
    let n = out.len();
    assert!(
        r0.len() == n && r1.len() == n && r2.len() == n && r3.len() == n && r4.len() == n,
        "reduce_rows5: row lengths {:?} != out length {n}",
        [r0.len(), r1.len(), r2.len(), r3.len(), r4.len()],
    );
    match isa.kind() {
        Kind::Scalar => reduce_rows5_scalar_from(r0, r1, r2, r3, r4, out, 0),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: a `ResolvedIsa` with this kind is only constructible
        // when `is_x86_feature_detected!("sse2")` held (crate::simd).
        Kind::Sse2 => unsafe { x86::reduce_rows5_sse2(r0, r1, r2, r3, r4, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: witness guarantees AVX2 was detected at runtime.
        Kind::Avx2 => unsafe { x86::reduce_rows5_avx2(r0, r1, r2, r3, r4, out) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: witness guarantees NEON was detected at runtime.
        Kind::Neon => unsafe { neon::reduce_rows5_neon(r0, r1, r2, r3, r4, out) },
    }
}

/// The portable reference loop, starting at byte `start` — also the tail
/// handler for every SIMD variant (lengths are rarely lane multiples: grid
/// widths are size-set values, all odd, times 3 bytes).
#[inline]
pub(crate) fn reduce_rows5_scalar_from(
    r0: &[u8],
    r1: &[u8],
    r2: &[u8],
    r3: &[u8],
    r4: &[u8],
    out: &mut [u8],
    start: usize,
) {
    for j in start..out.len() {
        let acc = u16::from(r0[j])
            + 4 * u16::from(r1[j])
            + 6 * u16::from(r2[j])
            + 4 * u16::from(r3[j])
            + u16::from(r4[j]);
        out[j] = ((acc + 8) >> 4) as u8;
    }
}

/// Crop gather: copy `src[idx[k]]` into `out[k]` for every `k`.
///
/// `idx` is a precomputed nearest-neighbor table (grid cell → frame pixel
/// index, see [`crate::geometry::AreaLayout::tba_index_table`]), so one
/// frame crop is a single pass of dependent loads — the `f64`
/// back-projection math runs once per layout instead of once per pixel.
///
/// # Panics
/// If `idx` and `out` differ in length, or any index is out of bounds for
/// `src` (tables built for the matching frame size never are).
pub fn gather_pixels(src: &[Rgb], idx: &[u32], out: &mut [Rgb]) {
    assert_eq!(idx.len(), out.len(), "gather_pixels: index/output mismatch");
    for (slot, &i) in out.iter_mut().zip(idx) {
        *slot = src[i as usize];
    }
}

/// Collapse the `rows × cols` grid held in `a[..rows * cols]` to a single
/// row, appended to `out` (which the caller has sized — `collapse` itself
/// must stay allocation-free for the zero-alloc hot path).
///
/// Levels ping-pong between `a` and `b` using [`reduce_rows5`] row-wise;
/// `b` must hold at least `max(1, (rows − 3) / 2) · cols` pixels. `rows`
/// must be a size-set member (callers validate; debug-asserted here).
pub fn collapse_grid_to_row(
    a: &mut [Rgb],
    b: &mut [Rgb],
    rows: usize,
    cols: usize,
    isa: ResolvedIsa,
    out: &mut Vec<Rgb>,
) {
    debug_assert!(in_size_set(rows), "row count {rows} not in size set");
    debug_assert!(a.len() >= rows * cols);
    debug_assert!(rows == 1 || b.len() >= ((rows - 3) / 2) * cols);
    let (mut src, mut dst) = (a, b);
    let mut cur_rows = rows;
    while cur_rows > 1 {
        let out_rows = (cur_rows - 3) / 2;
        for i in 0..out_rows {
            let top = 2 * i * cols;
            let window: [&[u8]; 5] =
                core::array::from_fn(|k| rgb_as_bytes(&src[top + k * cols..top + (k + 1) * cols]));
            reduce_rows5(
                isa,
                window,
                rgb_as_bytes_mut(&mut dst[i * cols..(i + 1) * cols]),
            );
        }
        std::mem::swap(&mut src, &mut dst);
        cur_rows = out_rows;
    }
    out.extend_from_slice(&src[..cols]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd::SimdLevel;

    /// Deterministic byte stream (no `proptest` here: these tests are the
    /// ones the CI Miri job runs, and they must stay interpreter-cheap).
    struct Lcg(u64);
    impl Lcg {
        fn next_u8(&mut self) -> u8 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (self.0 >> 33) as u8
        }
        fn bytes(&mut self, n: usize) -> Vec<u8> {
            (0..n).map(|_| self.next_u8()).collect()
        }
        fn pixels(&mut self, n: usize) -> Vec<Rgb> {
            (0..n)
                .map(|_| Rgb::new(self.next_u8(), self.next_u8(), self.next_u8()))
                .collect()
        }
    }

    /// The u32 arithmetic of `pyramid::kernel_reduce`, per byte — the
    /// independent reference the kernels must match bit for bit.
    fn reference_reduce(r: [&[u8]; 5], j: usize) -> u8 {
        let acc: u32 = [1u32, 4, 6, 4, 1]
            .iter()
            .zip(r)
            .map(|(w, row)| w * u32::from(row[j]))
            .sum();
        ((acc + 8) / 16) as u8
    }

    #[test]
    fn every_level_matches_reference_on_awkward_lengths() {
        let mut rng = Lcg(7);
        // Lengths around lane boundaries: sub-lane, exact lanes, lane+tail,
        // and the real grid widths (size-set values × 3 bytes, all odd).
        for n in [0, 1, 2, 3, 15, 16, 17, 31, 32, 33, 48, 100, 375, 759] {
            let rows: Vec<Vec<u8>> = (0..5).map(|_| rng.bytes(n)).collect();
            let r: [&[u8]; 5] = core::array::from_fn(|k| rows[k].as_slice());
            let expected: Vec<u8> = (0..n).map(|j| reference_reduce(r, j)).collect();
            for level in SimdLevel::all_available() {
                let isa = level.try_resolve().unwrap();
                let mut out = vec![0u8; n];
                reduce_rows5(isa, r, &mut out);
                assert_eq!(out, expected, "len {n} at {isa}");
            }
        }
    }

    #[test]
    fn saturating_inputs_stay_exact() {
        // All-255 rows drive the accumulator to its maximum 4088; the
        // narrowing back to u8 must still be exact (255), not saturating
        // garbage.
        let row = vec![255u8; 50];
        let r: [&[u8]; 5] = [&row, &row, &row, &row, &row];
        for level in SimdLevel::all_available() {
            let mut out = vec![0u8; 50];
            reduce_rows5(level.try_resolve().unwrap(), r, &mut out);
            assert!(out.iter().all(|&b| b == 255), "{level}");
        }
    }

    #[test]
    #[should_panic(expected = "length")]
    fn mismatched_lengths_panic() {
        let a = [0u8; 4];
        let b = [0u8; 5];
        let mut out = [0u8; 4];
        reduce_rows5(ResolvedIsa::SCALAR, [&a, &a, &a, &b, &a], &mut out);
    }

    #[test]
    fn gather_follows_index_table() {
        let src: Vec<Rgb> = (0..10).map(|i| Rgb::gray(i as u8 * 20)).collect();
        let idx = [9u32, 0, 3, 3, 7];
        let mut out = vec![Rgb::BLACK; 5];
        gather_pixels(&src, &idx, &mut out);
        assert_eq!(
            out,
            vec![
                Rgb::gray(180),
                Rgb::gray(0),
                Rgb::gray(60),
                Rgb::gray(60),
                Rgb::gray(140)
            ]
        );
    }

    #[test]
    fn collapse_matches_per_column_pyramid() {
        let mut rng = Lcg(99);
        for (rows, cols) in [(1usize, 5usize), (5, 13), (13, 29), (61, 125), (125, 125)] {
            let grid = rng.pixels(rows * cols);
            // Reference: reduce each column independently with the scalar
            // formula until one pixel remains.
            let mut expected = Vec::with_capacity(cols);
            for c in 0..cols {
                let mut col: Vec<Rgb> = (0..rows).map(|r| grid[r * cols + c]).collect();
                while col.len() > 1 {
                    col = (0..(col.len() - 3) / 2)
                        .map(|i| {
                            let w: Vec<Vec<u8>> =
                                (0..5).map(|k| col[2 * i + k].0.to_vec()).collect();
                            let r: [&[u8]; 5] = core::array::from_fn(|k| w[k].as_slice());
                            Rgb([
                                reference_reduce(r, 0),
                                reference_reduce(r, 1),
                                reference_reduce(r, 2),
                            ])
                        })
                        .collect();
                }
                expected.push(col[0]);
            }
            for level in SimdLevel::all_available() {
                let isa = level.try_resolve().unwrap();
                let mut a = grid.clone();
                let scratch_rows = if rows == 1 { 1 } else { (rows - 3) / 2 };
                let mut b = vec![Rgb::BLACK; scratch_rows * cols];
                let mut out = Vec::new();
                collapse_grid_to_row(&mut a, &mut b, rows, cols, isa, &mut out);
                assert_eq!(out, expected, "{rows}x{cols} at {isa}");
            }
        }
    }
}
