//! RGB pixel type used throughout the pipeline.
//!
//! The paper works in 8-bit RGB space ("in our RGB space red, green and blue
//! colors range from 0 to 255", §3.1). A *sign* — the single pixel a frame
//! region reduces to — is also an [`Rgb`] value, so this type carries both
//! raw image data and the reduced features.

use serde::{Deserialize, Serialize};

/// An 8-bit RGB pixel.
///
/// This is the unit of every stage of the pipeline: raw frames, transformed
/// background areas, signatures (rows of pixels), and signs (single pixels)
/// are all built from `Rgb` values.
///
/// `#[repr(transparent)]` guarantees the layout is exactly `[u8; 3]`
/// (size 3, align 1), which is what lets [`rgb_as_bytes`] /
/// [`rgb_as_bytes_mut`] reinterpret pixel slices as byte slices for the
/// SIMD extraction kernels without copying.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[repr(transparent)]
pub struct Rgb(pub [u8; 3]);

// The byte-view helpers below rely on this layout; `repr(transparent)`
// already guarantees it, the assertions just make a violation unmissable.
const _: () = assert!(std::mem::size_of::<Rgb>() == 3);
const _: () = assert!(std::mem::align_of::<Rgb>() == 1);

/// View a pixel slice as its raw channel bytes (`r g b r g b …`), without
/// copying. The inverse view of `FrameBuf::from_rgb24`'s input format.
#[inline]
pub fn rgb_as_bytes(pixels: &[Rgb]) -> &[u8] {
    // SAFETY: `Rgb` is `repr(transparent)` over `[u8; 3]` (size 3,
    // align 1, asserted above), so `len` pixels are exactly `3 * len`
    // initialized bytes at the same address; `u8` has no validity
    // requirements and the lifetime is inherited from the input borrow.
    unsafe { std::slice::from_raw_parts(pixels.as_ptr().cast::<u8>(), pixels.len() * 3) }
}

/// Mutable variant of [`rgb_as_bytes`]: view a pixel slice as its raw
/// channel bytes for in-place writes.
#[inline]
pub fn rgb_as_bytes_mut(pixels: &mut [Rgb]) -> &mut [u8] {
    // SAFETY: as in `rgb_as_bytes`; the `&mut` borrow is unique, so the
    // byte view is the only live alias for its lifetime, and any byte
    // pattern is a valid `[u8; 3]`.
    unsafe { std::slice::from_raw_parts_mut(pixels.as_mut_ptr().cast::<u8>(), pixels.len() * 3) }
}

impl Rgb {
    /// Black (all channels zero).
    pub const BLACK: Rgb = Rgb([0, 0, 0]);
    /// White (all channels 255).
    pub const WHITE: Rgb = Rgb([255, 255, 255]);

    /// Construct from individual channels.
    #[inline]
    pub const fn new(r: u8, g: u8, b: u8) -> Self {
        Rgb([r, g, b])
    }

    /// Construct a gray pixel with all three channels equal.
    #[inline]
    pub const fn gray(v: u8) -> Self {
        Rgb([v, v, v])
    }

    /// Red channel.
    #[inline]
    pub const fn r(self) -> u8 {
        self.0[0]
    }

    /// Green channel.
    #[inline]
    pub const fn g(self) -> u8 {
        self.0[1]
    }

    /// Blue channel.
    #[inline]
    pub const fn b(self) -> u8 {
        self.0[2]
    }

    /// Maximum absolute per-channel difference between two pixels.
    ///
    /// This is the "max. difference in `Sign^BA`s" of Eq. 2: the paper
    /// normalizes it by 256 to obtain the percentage difference `D_s`.
    #[inline]
    pub fn max_channel_diff(self, other: Rgb) -> u8 {
        let d0 = self.0[0].abs_diff(other.0[0]);
        let d1 = self.0[1].abs_diff(other.0[1]);
        let d2 = self.0[2].abs_diff(other.0[2]);
        d0.max(d1).max(d2)
    }

    /// Sum of absolute per-channel differences (L1 distance), as `u16`.
    #[inline]
    pub fn l1_dist(self, other: Rgb) -> u16 {
        self.0[0].abs_diff(other.0[0]) as u16
            + self.0[1].abs_diff(other.0[1]) as u16
            + self.0[2].abs_diff(other.0[2]) as u16
    }

    /// Mean of the absolute per-channel differences as a float.
    #[inline]
    pub fn mean_abs_diff(self, other: Rgb) -> f64 {
        f64::from(self.l1_dist(other)) / 3.0
    }

    /// `D_s` of Eq. 2: percentage difference between two signs.
    ///
    /// ```
    /// use vdb_core::pixel::Rgb;
    /// let a = Rgb::new(219, 152, 142);
    /// let b = Rgb::new(226, 164, 172);
    /// // max channel diff is 30 -> 30/256*100 = 11.71875%
    /// assert!((a.percent_diff(b) - 11.71875).abs() < 1e-9);
    /// ```
    #[inline]
    pub fn percent_diff(self, other: Rgb) -> f64 {
        f64::from(self.max_channel_diff(other)) / 256.0 * 100.0
    }

    /// ITU-R BT.601 luma approximation, useful for edge detection baselines.
    #[inline]
    pub fn luma(self) -> u8 {
        // Integer approximation: (77 R + 150 G + 29 B) / 256.
        let y = 77u32 * u32::from(self.0[0])
            + 150u32 * u32::from(self.0[1])
            + 29u32 * u32::from(self.0[2]);
        (y >> 8) as u8
    }

    /// The three channels as `f64`s, for statistics (Eqs. 3–6).
    #[inline]
    pub fn channels_f64(self) -> [f64; 3] {
        [
            f64::from(self.0[0]),
            f64::from(self.0[1]),
            f64::from(self.0[2]),
        ]
    }

    /// Per-channel saturating addition.
    #[inline]
    pub fn saturating_add(self, other: Rgb) -> Rgb {
        Rgb([
            self.0[0].saturating_add(other.0[0]),
            self.0[1].saturating_add(other.0[1]),
            self.0[2].saturating_add(other.0[2]),
        ])
    }

    /// Blend `self` toward `other` by `t` in `\[0, 1\]` (used by the synthetic
    /// substrate for dissolves and anti-aliased drawing).
    #[inline]
    pub fn lerp(self, other: Rgb, t: f64) -> Rgb {
        let t = t.clamp(0.0, 1.0);
        let mix = |a: u8, b: u8| -> u8 {
            let v = f64::from(a) + (f64::from(b) - f64::from(a)) * t;
            v.round().clamp(0.0, 255.0) as u8
        };
        Rgb([
            mix(self.0[0], other.0[0]),
            mix(self.0[1], other.0[1]),
            mix(self.0[2], other.0[2]),
        ])
    }

    /// Whether every channel differs from `other` by at most `tol`.
    ///
    /// This is the pixel-match predicate of the stage-3 signature tracking
    /// (two signature pixels "match" if they are near-identical).
    #[inline]
    pub fn matches_within(self, other: Rgb, tol: u8) -> bool {
        self.max_channel_diff(other) <= tol
    }
}

impl From<[u8; 3]> for Rgb {
    #[inline]
    fn from(v: [u8; 3]) -> Self {
        Rgb(v)
    }
}

impl From<Rgb> for [u8; 3] {
    #[inline]
    fn from(p: Rgb) -> Self {
        p.0
    }
}

/// Accumulator for averaging many pixels without overflow.
///
/// Used by the Gaussian pyramid and by representative-frame statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct RgbAccumulator {
    sums: [u64; 3],
    count: u64,
}

impl RgbAccumulator {
    /// Fresh empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one pixel.
    #[inline]
    pub fn push(&mut self, p: Rgb) {
        self.sums[0] += u64::from(p.0[0]);
        self.sums[1] += u64::from(p.0[1]);
        self.sums[2] += u64::from(p.0[2]);
        self.count += 1;
    }

    /// Number of pixels accumulated.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Rounded mean pixel; black if empty.
    pub fn mean(&self) -> Rgb {
        if self.count == 0 {
            return Rgb::BLACK;
        }
        let avg = |s: u64| -> u8 { ((s + self.count / 2) / self.count).min(255) as u8 };
        Rgb([avg(self.sums[0]), avg(self.sums[1]), avg(self.sums[2])])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn byte_views_round_trip() {
        let mut px = vec![Rgb::new(1, 2, 3), Rgb::new(4, 5, 6), Rgb::new(7, 8, 9)];
        assert_eq!(rgb_as_bytes(&px), &[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        rgb_as_bytes_mut(&mut px)[4] = 99;
        assert_eq!(px[1], Rgb::new(4, 99, 6));
        assert_eq!(rgb_as_bytes(&[]), &[] as &[u8]);
    }

    #[test]
    fn max_channel_diff_picks_largest() {
        let a = Rgb::new(10, 200, 30);
        let b = Rgb::new(15, 100, 40);
        assert_eq!(a.max_channel_diff(b), 100);
        assert_eq!(b.max_channel_diff(a), 100);
    }

    #[test]
    fn percent_diff_matches_eq2_worked_example() {
        // Table 2 signs: (219,152,142) vs (226,164,172): max diff 30.
        let a = Rgb::new(219, 152, 142);
        let b = Rgb::new(226, 164, 172);
        let d_s = a.percent_diff(b);
        assert!((d_s - (30.0 / 256.0 * 100.0)).abs() < 1e-12);
        // 11.7% > 10% -> RELATIONSHIP would call these frames unrelated.
        assert!(d_s > 10.0);
    }

    #[test]
    fn identical_pixels_have_zero_diff() {
        let a = Rgb::new(1, 2, 3);
        assert_eq!(a.max_channel_diff(a), 0);
        assert_eq!(a.l1_dist(a), 0);
        assert_eq!(a.percent_diff(a), 0.0);
    }

    #[test]
    fn luma_extremes() {
        assert_eq!(Rgb::BLACK.luma(), 0);
        // 77+150+29 = 256 -> white maps to 255.
        assert_eq!(Rgb::WHITE.luma(), 255);
    }

    #[test]
    fn luma_orders_brightness() {
        assert!(Rgb::gray(200).luma() > Rgb::gray(50).luma());
    }

    #[test]
    fn lerp_endpoints() {
        let a = Rgb::new(0, 100, 200);
        let b = Rgb::new(255, 0, 50);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
    }

    #[test]
    fn lerp_midpoint_rounds() {
        let a = Rgb::new(0, 0, 0);
        let b = Rgb::new(255, 101, 1);
        let m = a.lerp(b, 0.5);
        assert_eq!(m, Rgb::new(128, 51, 1)); // 127.5 -> 128, 50.5 -> 51, 0.5 -> 1
    }

    #[test]
    fn accumulator_mean_rounds_to_nearest() {
        let mut acc = RgbAccumulator::new();
        acc.push(Rgb::new(0, 0, 10));
        acc.push(Rgb::new(1, 3, 11));
        // sums (1,3,21), count 2 -> (0.5, 1.5, 10.5) -> rounds (1, 2, 11)
        assert_eq!(acc.mean(), Rgb::new(1, 2, 11));
        assert_eq!(acc.count(), 2);
    }

    #[test]
    fn empty_accumulator_is_black() {
        assert_eq!(RgbAccumulator::new().mean(), Rgb::BLACK);
    }

    #[test]
    fn matches_within_tolerance_boundary() {
        let a = Rgb::new(100, 100, 100);
        let b = Rgb::new(110, 95, 100);
        assert!(a.matches_within(b, 10));
        assert!(!a.matches_within(b, 9));
    }

    proptest! {
        #[test]
        fn prop_diff_symmetric(a in any::<[u8;3]>(), b in any::<[u8;3]>()) {
            let (a, b) = (Rgb(a), Rgb(b));
            prop_assert_eq!(a.max_channel_diff(b), b.max_channel_diff(a));
            prop_assert_eq!(a.l1_dist(b), b.l1_dist(a));
        }

        #[test]
        fn prop_diff_triangle_like(a in any::<[u8;3]>(), b in any::<[u8;3]>(), c in any::<[u8;3]>()) {
            let (a, b, c) = (Rgb(a), Rgb(b), Rgb(c));
            // Max-channel distance is a metric (Chebyshev on channels).
            prop_assert!(
                u16::from(a.max_channel_diff(c))
                    <= u16::from(a.max_channel_diff(b)) + u16::from(b.max_channel_diff(c))
            );
        }

        #[test]
        fn prop_percent_diff_in_range(a in any::<[u8;3]>(), b in any::<[u8;3]>()) {
            let d = Rgb(a).percent_diff(Rgb(b));
            prop_assert!((0.0..=100.0).contains(&d));
        }

        #[test]
        fn prop_lerp_stays_in_channel_hull(a in any::<[u8;3]>(), b in any::<[u8;3]>(), t in 0.0f64..=1.0) {
            let (pa, pb) = (Rgb(a), Rgb(b));
            let m = pa.lerp(pb, t);
            for ch in 0..3 {
                let lo = a[ch].min(b[ch]);
                let hi = a[ch].max(b[ch]);
                prop_assert!(m.0[ch] >= lo && m.0[ch] <= hi);
            }
        }

        #[test]
        fn prop_accumulator_mean_in_hull(pixels in prop::collection::vec(any::<[u8;3]>(), 1..64)) {
            let mut acc = RgbAccumulator::new();
            for p in &pixels {
                acc.push(Rgb(*p));
            }
            let m = acc.mean();
            for ch in 0..3 {
                let lo = pixels.iter().map(|p| p[ch]).min().unwrap();
                let hi = pixels.iter().map(|p| p[ch]).max().unwrap();
                prop_assert!(m.0[ch] >= lo && m.0[ch] <= hi);
            }
        }
    }
}
