//! The modified Gaussian pyramid (§2.1, Figure 3).
//!
//! Burt & Adelson's Gaussian pyramid \[24\] reduces an image by low-pass
//! filtering and subsampling. The paper re-purposes it to collapse a
//! two-dimensional TBA/FOA grid to a single row of pixels (the *signature*)
//! and finally to a single pixel (the *sign*).
//!
//! One reduction step maps a line of `s_j` pixels to `s_{j-1} = (s_j − 3)/2`
//! pixels with the classic 5-tap kernel `(1, 4, 6, 4, 1)/16` centered at
//! every second input pixel; the size set `{1, 5, 13, 29, 61, ...}` is
//! exactly the family of lengths for which the 5-tap window tiles the input
//! without padding: the last window `[2(s_{j-1}−1) .. 2(s_{j-1}−1)+4]` ends
//! at index `s_j − 1`.
//!
//! The paper's complexity claim — `O(2^log(m+1)) = O(m)` for `m` pixels —
//! holds: each step visits each input pixel a constant number of times and
//! the lengths shrink geometrically. `reduce_grid_to_signature` +
//! `reduce_line_to_sign` realize Figure 3's "13×5 TBA → 13-pixel signature →
//! sign".

use crate::error::{CoreError, Result};
use crate::geometry::PixelGrid;
use crate::pixel::Rgb;
use crate::simd::{ResolvedIsa, SimdLevel};
use crate::sizeset::in_size_set;
use std::cell::Cell;

/// The 5-tap Burt–Adelson kernel, numerators over 16.
const KERNEL: [u32; 5] = [1, 4, 6, 4, 1];

thread_local! {
    /// Per-thread count of heap allocations made inside the reduction
    /// routines (fresh buffers plus scratch growth). After a
    /// [`ReduceScratch`] has warmed up, the `*_with`/`*_into` entry points
    /// leave this counter untouched — the property the pipeline engine's
    /// zero-allocation hot path is asserted on.
    static REDUCTION_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Allocations performed by this thread's pyramid reductions so far.
///
/// Strictly increasing; compare two readings to count the allocations in
/// between. Thread-local, so concurrent tests and parallel extraction
/// workers never perturb each other's readings.
pub fn reduction_allocs() -> u64 {
    REDUCTION_ALLOCS.with(Cell::get)
}

/// Make sure `buf` can hold `cap` pixels without reallocating mid-loop,
/// charging the counter only when actual heap growth happens. Shared with
/// the fused extraction path in [`crate::features`], so one counter
/// observes every reduction-related buffer.
pub(crate) fn ensure_capacity(buf: &mut Vec<Rgb>, cap: usize) {
    if buf.capacity() < cap {
        REDUCTION_ALLOCS.with(|c| c.set(c.get() + 1));
        buf.reserve(cap - buf.len());
    }
}

/// Reusable intermediate buffers for the pyramid reductions.
///
/// One reduction needs at most two scratch lines (current and next level);
/// the buffers grow to the largest input ever seen and are then reused —
/// zero allocations per frame after warm-up. One scratch must not be
/// shared across threads (each parallel extraction worker owns its own).
#[derive(Debug, Clone, Default)]
pub struct ReduceScratch {
    a: Vec<Rgb>,
    b: Vec<Rgb>,
}

#[inline]
fn kernel_reduce(window: &[Rgb]) -> Rgb {
    debug_assert_eq!(window.len(), 5);
    let mut acc = [0u32; 3];
    for (w, p) in KERNEL.iter().zip(window) {
        for (ch, a) in acc.iter_mut().enumerate() {
            *a += w * u32::from(p.0[ch]);
        }
    }
    // Round to nearest: the kernel weights sum to 16.
    Rgb([
        ((acc[0] + 8) / 16) as u8,
        ((acc[1] + 8) / 16) as u8,
        ((acc[2] + 8) / 16) as u8,
    ])
}

/// One pyramid reduction step into a caller-owned buffer: a line of
/// size-set length `s_j` becomes a line of length `s_{j-1}` in `out`
/// (cleared first). Allocation-free once `out` has the capacity.
///
/// # Errors
/// [`CoreError::NotInSizeSet`] if `line.len()` is not a size-set member
/// greater than 1.
pub fn reduce_step_into(line: &[Rgb], out: &mut Vec<Rgb>) -> Result<()> {
    let n = line.len();
    if n <= 1 || !in_size_set(n) {
        return Err(CoreError::NotInSizeSet { len: n });
    }
    let out_len = (n - 3) / 2;
    out.clear();
    ensure_capacity(out, out_len);
    for i in 0..out_len {
        out.push(kernel_reduce(&line[2 * i..2 * i + 5]));
    }
    Ok(())
}

/// One pyramid reduction step: a line of size-set length `s_j` becomes a
/// line of length `s_{j-1}`.
///
/// Allocates the output; the hot path uses [`reduce_step_into`].
///
/// # Errors
/// [`CoreError::NotInSizeSet`] if `line.len()` is not a size-set member
/// greater than 1.
pub fn reduce_step(line: &[Rgb]) -> Result<Vec<Rgb>> {
    let mut out = Vec::new();
    reduce_step_into(line, &mut out)?;
    Ok(out)
}

/// Collapse a line of size-set length all the way to a single pixel
/// (the *sign*), reusing `scratch` for the intermediate levels.
pub fn reduce_line_to_sign_with(line: &[Rgb], scratch: &mut ReduceScratch) -> Result<Rgb> {
    if line.len() == 1 {
        return Ok(line[0]);
    }
    reduce_step_into(line, &mut scratch.a)?;
    while scratch.a.len() > 1 {
        reduce_step_into(&scratch.a, &mut scratch.b)?;
        std::mem::swap(&mut scratch.a, &mut scratch.b);
    }
    Ok(scratch.a[0])
}

/// Collapse a line of size-set length all the way to a single pixel
/// (the *sign*).
pub fn reduce_line_to_sign(line: &[Rgb]) -> Result<Rgb> {
    reduce_line_to_sign_with(line, &mut ReduceScratch::default())
}

/// Collapse every column of a grid to one pixel into a caller-owned
/// buffer, producing the one-row *signature* in `out` (cleared first).
///
/// Intermediate pyramid levels live in `scratch`; once both `scratch` and
/// `out` have warmed up to the grid's size, the reduction performs no heap
/// allocation (see [`reduction_allocs`]).
///
/// The grid's row count must be in the size set; the column count (the
/// signature length) must be too, so the signature can later be reduced to
/// the sign.
pub fn reduce_grid_to_signature_into(
    grid: &PixelGrid,
    scratch: &mut ReduceScratch,
    out: &mut Vec<Rgb>,
) -> Result<()> {
    reduce_grid_to_signature_into_isa(grid, scratch, out, SimdLevel::Auto.resolve())
}

/// [`reduce_grid_to_signature_into`] running the column reduction at an
/// explicit SIMD level. Every level is bit-identical (the knob only picks
/// lane width, see [`crate::kernels`]); this entry point exists so the
/// equivalence suites and benches can pin one.
pub fn reduce_grid_to_signature_into_isa(
    grid: &PixelGrid,
    scratch: &mut ReduceScratch,
    out: &mut Vec<Rgb>,
    isa: ResolvedIsa,
) -> Result<()> {
    let rows = grid.rows();
    let cols = grid.cols();
    if !in_size_set(rows) {
        return Err(CoreError::NotInSizeSet { len: rows });
    }
    if !in_size_set(cols) {
        return Err(CoreError::NotInSizeSet { len: cols });
    }
    out.clear();
    ensure_capacity(out, cols);
    if rows == 1 {
        // Already a single line.
        out.extend_from_slice(grid.data());
        return Ok(());
    }
    // Reduce all columns in lock-step, operating on whole rows for cache
    // friendliness (and so each level is one call into the row kernel):
    // `collapse_grid_to_row` ping-pongs flat `(rows-3)/2 × cols` levels
    // between the two scratch buffers. Both buffers are grown to the full
    // grid up front: the ping-pong swaps in `reduce_line_to_sign_with`
    // migrate capacity between `a` and `b`, so sizing only the buffer a
    // step is about to use would re-grow one of them on a later call
    // depending on swap parity.
    scratch.a.clear();
    ensure_capacity(&mut scratch.a, rows * cols);
    ensure_capacity(&mut scratch.b, rows * cols);
    scratch.a.extend_from_slice(grid.data());
    // The collapse works on slices, so `b` needs *length* (not just
    // capacity) for the first level; contents are fully overwritten.
    let b_len = ((rows - 3) / 2) * cols;
    if scratch.b.len() < b_len {
        scratch.b.resize(b_len, Rgb::BLACK);
    }
    crate::kernels::collapse_grid_to_row(&mut scratch.a, &mut scratch.b, rows, cols, isa, out);
    Ok(())
}

/// Collapse every column of a grid to one pixel, producing the one-row
/// *signature* (Figure 3: a 13×5 TBA's five-pixel columns each become one
/// pixel, giving a 13-pixel line).
///
/// Allocates per call; the hot path uses [`reduce_grid_to_signature_into`].
pub fn reduce_grid_to_signature(grid: &PixelGrid) -> Result<Vec<Rgb>> {
    let mut out = Vec::new();
    reduce_grid_to_signature_into(grid, &mut ReduceScratch::default(), &mut out)?;
    Ok(out)
}

/// Collapse a grid all the way to its sign: signature first, then the
/// signature's own pyramid.
pub fn reduce_grid_to_sign(grid: &PixelGrid) -> Result<Rgb> {
    let sig = reduce_grid_to_signature(grid)?;
    reduce_line_to_sign(&sig)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sizeset::size_set;
    use proptest::prelude::*;

    fn gray_line(values: &[u8]) -> Vec<Rgb> {
        values.iter().map(|&v| Rgb::gray(v)).collect()
    }

    #[test]
    fn reduce_step_rejects_bad_lengths() {
        for n in [0usize, 2, 3, 4, 6, 7, 12, 14] {
            let line = vec![Rgb::BLACK; n];
            assert!(
                matches!(reduce_step(&line), Err(CoreError::NotInSizeSet { .. })),
                "length {n} must be rejected"
            );
        }
        assert!(matches!(
            reduce_step(&[Rgb::BLACK]),
            Err(CoreError::NotInSizeSet { len: 1 })
        ));
    }

    #[test]
    fn five_to_one_is_kernel_average() {
        // (1*0 + 4*16 + 6*32 + 4*48 + 1*64) / 16 = (0+64+192+192+64)/16 = 32.
        let line = gray_line(&[0, 16, 32, 48, 64]);
        let out = reduce_step(&line).unwrap();
        assert_eq!(out, vec![Rgb::gray(32)]);
    }

    #[test]
    fn thirteen_to_five_window_placement() {
        // Mark pixel 12 (the last); only the last output (window 8..12)
        // should see it.
        let mut line = vec![Rgb::gray(0); 13];
        line[12] = Rgb::gray(160);
        let out = reduce_step(&line).unwrap();
        assert_eq!(out.len(), 5);
        assert_eq!(out[0], Rgb::gray(0));
        assert_eq!(out[3], Rgb::gray(0));
        // Last window: weight 1/16 on pixel 12 -> 10.
        assert_eq!(out[4], Rgb::gray(10));
    }

    /// Figure 3 golden test: a 13×5 TBA reduces to a 13-pixel signature and
    /// then a single sign.
    #[test]
    fn figure3_thirteen_by_five() {
        let grid = PixelGrid::from_fn(5, 13, |r, c| Rgb::gray((10 * r + c) as u8));
        let sig = reduce_grid_to_signature(&grid).unwrap();
        assert_eq!(sig.len(), 13);
        // Column c holds values 10r + c; kernel average over r: exactly 20 + c.
        for (c, p) in sig.iter().enumerate() {
            assert_eq!(*p, Rgb::gray(20 + c as u8), "signature[{c}]");
        }
        let sign = reduce_line_to_sign(&sig).unwrap();
        // Signature is the ramp 20..=32; its pyramid collapses near the
        // center value 26.
        assert_eq!(sign, Rgb::gray(26));
    }

    #[test]
    fn scratch_paths_match_allocating_paths() {
        let grid = PixelGrid::from_fn(13, 29, |r, c| Rgb::gray(((r * 31 + c * 7) % 256) as u8));
        let mut scratch = ReduceScratch::default();
        let mut sig = Vec::new();
        reduce_grid_to_signature_into(&grid, &mut scratch, &mut sig).unwrap();
        assert_eq!(sig, reduce_grid_to_signature(&grid).unwrap());
        assert_eq!(
            reduce_line_to_sign_with(&sig, &mut scratch).unwrap(),
            reduce_line_to_sign(&sig).unwrap()
        );
    }

    #[test]
    fn warm_scratch_reduces_without_allocating() {
        let grid_a = PixelGrid::from_fn(13, 253, |r, c| Rgb::gray(((r * 3 + c) % 256) as u8));
        let grid_b = PixelGrid::from_fn(13, 253, |r, c| Rgb::gray(((r * 5 + c * 2) % 256) as u8));
        let mut scratch = ReduceScratch::default();
        let mut sig = Vec::new();
        // Warm-up pass allocates; every pass after it must not.
        reduce_grid_to_signature_into(&grid_a, &mut scratch, &mut sig).unwrap();
        reduce_line_to_sign_with(&sig, &mut scratch).unwrap();
        let before = reduction_allocs();
        for _ in 0..10 {
            reduce_grid_to_signature_into(&grid_b, &mut scratch, &mut sig).unwrap();
            reduce_line_to_sign_with(&sig, &mut scratch).unwrap();
            reduce_grid_to_signature_into(&grid_a, &mut scratch, &mut sig).unwrap();
            reduce_line_to_sign_with(&sig, &mut scratch).unwrap();
        }
        assert_eq!(
            reduction_allocs(),
            before,
            "warm reductions must not allocate"
        );
    }

    #[test]
    fn grid_reduction_is_bit_identical_at_every_simd_level() {
        let grid = PixelGrid::from_fn(13, 253, |r, c| Rgb::gray(((r * 37 + c * 11) % 256) as u8));
        let reference = reduce_grid_to_signature(&grid).unwrap();
        for level in SimdLevel::all_available() {
            let mut scratch = ReduceScratch::default();
            let mut sig = Vec::new();
            reduce_grid_to_signature_into_isa(&grid, &mut scratch, &mut sig, level.resolve())
                .unwrap();
            assert_eq!(sig, reference, "level {level}");
        }
    }

    #[test]
    fn uniform_grid_reduces_to_same_value() {
        let grid = PixelGrid::from_fn(13, 29, |_, _| Rgb::new(77, 11, 200));
        assert_eq!(reduce_grid_to_sign(&grid).unwrap(), Rgb::new(77, 11, 200));
    }

    #[test]
    fn single_row_grid_signature_is_the_row() {
        let grid = PixelGrid::from_fn(1, 5, |_, c| Rgb::gray(c as u8));
        let sig = reduce_grid_to_signature(&grid).unwrap();
        assert_eq!(sig, gray_line(&[0, 1, 2, 3, 4]));
    }

    #[test]
    fn grid_with_bad_rows_rejected() {
        let grid = PixelGrid::from_fn(4, 5, |_, _| Rgb::BLACK);
        assert!(matches!(
            reduce_grid_to_signature(&grid),
            Err(CoreError::NotInSizeSet { len: 4 })
        ));
        let grid = PixelGrid::from_fn(5, 6, |_, _| Rgb::BLACK);
        assert!(matches!(
            reduce_grid_to_signature(&grid),
            Err(CoreError::NotInSizeSet { len: 6 })
        ));
    }

    #[test]
    fn sign_is_shift_invariant_for_uniform_shift() {
        // Shifting every pixel by +10 shifts the sign by +10 (linearity up
        // to rounding).
        let grid_a = PixelGrid::from_fn(5, 13, |r, c| Rgb::gray((5 * r + 3 * c) as u8));
        let grid_b = PixelGrid::from_fn(5, 13, |r, c| Rgb::gray((5 * r + 3 * c + 10) as u8));
        let a = reduce_grid_to_sign(&grid_a).unwrap();
        let b = reduce_grid_to_sign(&grid_b).unwrap();
        assert!(b.0[0].abs_diff(a.0[0].wrapping_add(10)) <= 1);
    }

    #[test]
    fn paper_tba_shape_reduces() {
        // The real 160x120 layout gives a 13×253 TBA; two reductions of the
        // column (13 -> 5 -> 1... wait, columns have length 13) and six of
        // the 253-long signature.
        let grid = PixelGrid::from_fn(13, 253, |r, c| Rgb::gray(((r * 17 + c * 3) % 256) as u8));
        let sig = reduce_grid_to_signature(&grid).unwrap();
        assert_eq!(sig.len(), 253);
        let sign = reduce_line_to_sign(&sig).unwrap();
        // Smoke: result is a valid pixel, deterministic.
        assert_eq!(sign, reduce_grid_to_sign(&grid).unwrap());
    }

    proptest! {
        #[test]
        fn prop_reduce_bounded_by_extrema(
            j in 2u32..=6,
            seed in any::<u64>(),
        ) {
            let n = size_set(j);
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 33) as u8
            };
            let line: Vec<Rgb> = (0..n).map(|_| Rgb::new(next(), next(), next())).collect();
            let lo: [u8; 3] = core::array::from_fn(|ch| line.iter().map(|p| p.0[ch]).min().unwrap());
            let hi: [u8; 3] = core::array::from_fn(|ch| line.iter().map(|p| p.0[ch]).max().unwrap());
            let out = reduce_step(&line).unwrap();
            prop_assert_eq!(out.len(), (n - 3) / 2);
            for p in &out {
                for ch in 0..3 {
                    prop_assert!(p.0[ch] >= lo[ch] && p.0[ch] <= hi[ch]);
                }
            }
            let sign = reduce_line_to_sign(&line).unwrap();
            for ch in 0..3 {
                prop_assert!(sign.0[ch] >= lo[ch] && sign.0[ch] <= hi[ch]);
            }
        }

        #[test]
        fn prop_grid_sign_bounded(
            rows_j in 1u32..=4,
            cols_j in 1u32..=5,
            seed in any::<u64>(),
        ) {
            let rows = size_set(rows_j);
            let cols = size_set(cols_j);
            let mut x = seed | 1;
            let mut next = || {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 33) as u8
            };
            let grid = PixelGrid::from_fn(rows, cols, |_, _| Rgb::new(next(), next(), next()));
            let lo: [u8; 3] = core::array::from_fn(|ch| grid.data().iter().map(|p| p.0[ch]).min().unwrap());
            let hi: [u8; 3] = core::array::from_fn(|ch| grid.data().iter().map(|p| p.0[ch]).max().unwrap());
            let sign = reduce_grid_to_sign(&grid).unwrap();
            for ch in 0..3 {
                prop_assert!(sign.0[ch] >= lo[ch] && sign.0[ch] <= hi[ch]);
            }
        }
    }
}
