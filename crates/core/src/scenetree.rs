//! Scene-tree construction for non-linear browsing (§3, Figures 5–6).
//!
//! The scene tree is a browsing hierarchy of unbounded height built purely
//! from visual content: adjacent shots sharing similar backgrounds
//! (algorithm RELATIONSHIP) are grouped into scenes, scenes with related
//! shots into higher-level scenes, and so on. "The shape and size of a
//! scene tree are determined only by the semantic complexity of the video."
//!
//! # Construction (paper steps 1–6)
//!
//! 1. A level-0 scene node is created per shot.
//! 2. Shots are visited in order starting from the third.
//! 3. Each shot `i` is compared (RELATIONSHIP) against earlier shots in
//!    descending order until a related shot `j` is found. *Note:* the
//!    paper's step 3 lists the comparison sequence as `i−2, …, 1`, but its
//!    own worked example (Figure 6(g)) connects shot #9 to EN4 because it
//!    is "related to the immediate previous node, shot#8" — which requires
//!    comparing with `i−1` as well. We therefore compare `i−1, i−2, …, 1`;
//!    this is the only reading that reproduces the published figure.
//! 4. Depending on whether `SN⁰_{i−1}` and `SN⁰_j` have parents / share an
//!    ancestor, shot `i` joins an existing scene or forces creation of a
//!    new one (three scenarios, reproduced below).
//! 5. At the end, all parentless nodes are connected to a root.
//! 6. Every *empty* (internal) node is named `SN_m^{c+1}` after the child
//!    whose shot `m` has the longest run of identical `Sign^BA` values, and
//!    inherits that child's representative frame.

use crate::pixel::Rgb;
use crate::relationship::{shots_related_with_threshold, RELATED_THRESHOLD_PERCENT};
use crate::shot::{longest_sign_run, representative_frame_offset, Shot};
use serde::{Deserialize, Serialize};

/// Identifier of a node within one [`SceneTree`]'s arena.
pub type NodeId = usize;

/// One scene node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SceneNode {
    /// Arena id.
    pub id: NodeId,
    /// Parent node (`None` only for the root).
    pub parent: Option<NodeId>,
    /// Children in temporal order.
    pub children: Vec<NodeId>,
    /// For level-0 nodes, the shot this node was created from.
    pub shot: Option<usize>,
    /// The `m` of the node's name `SN_m^c`: the shot whose representative
    /// frame this node displays.
    pub name_shot: usize,
    /// The `c` of the node's name `SN_m^c` (0 for leaves).
    pub level: usize,
    /// Absolute frame index of the representative frame.
    pub rep_frame: usize,
}

impl SceneNode {
    /// Whether this is a level-0 (shot) node.
    pub fn is_leaf(&self) -> bool {
        self.shot.is_some()
    }

    /// The paper's name notation, e.g. `SN_1^2` (shot ids printed 1-based
    /// as in the paper).
    pub fn name(&self) -> String {
        format!("SN_{}^{}", self.name_shot + 1, self.level)
    }
}

/// A fully built scene tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SceneTree {
    nodes: Vec<SceneNode>,
    root: NodeId,
    /// `leaf[s]` is the node id of shot `s`'s level-0 node.
    leaves: Vec<NodeId>,
}

/// Parameters of tree construction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SceneTreeConfig {
    /// RELATIONSHIP threshold on `D_s` in percent (paper: 10.0).
    pub relationship_threshold_percent: f64,
}

impl Default for SceneTreeConfig {
    fn default() -> Self {
        SceneTreeConfig {
            relationship_threshold_percent: RELATED_THRESHOLD_PERCENT,
        }
    }
}

struct Builder<'a> {
    nodes: Vec<SceneNode>,
    leaves: Vec<NodeId>,
    shots: &'a [Shot],
    signs: &'a [Rgb],
    threshold: f64,
}

impl<'a> Builder<'a> {
    fn new(shots: &'a [Shot], signs: &'a [Rgb], threshold: f64) -> Self {
        let mut nodes = Vec::with_capacity(shots.len() * 2);
        let mut leaves = Vec::with_capacity(shots.len());
        for (s, shot) in shots.iter().enumerate() {
            let rep = shot.start + representative_frame_offset(&signs[shot.start..=shot.end]);
            let id = nodes.len();
            nodes.push(SceneNode {
                id,
                parent: None,
                children: Vec::new(),
                shot: Some(s),
                name_shot: s,
                level: 0,
                rep_frame: rep,
            });
            leaves.push(id);
        }
        Builder {
            nodes,
            leaves,
            shots,
            signs,
            threshold,
        }
    }

    fn shot_signs(&self, s: usize) -> &'a [Rgb] {
        let shot = &self.shots[s];
        &self.signs[shot.start..=shot.end]
    }

    fn new_empty(&mut self) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(SceneNode {
            id,
            parent: None,
            children: Vec::new(),
            shot: None,
            name_shot: usize::MAX, // assigned during naming
            level: 0,
            rep_frame: 0,
        });
        id
    }

    fn connect(&mut self, child: NodeId, parent: NodeId) {
        debug_assert!(
            self.nodes[child].parent.is_none(),
            "single-parent invariant"
        );
        self.nodes[child].parent = Some(parent);
        self.nodes[parent].children.push(child);
    }

    fn oldest_ancestor(&self, mut n: NodeId) -> NodeId {
        while let Some(p) = self.nodes[n].parent {
            n = p;
        }
        n
    }

    /// Proper ancestors of `n`, nearest first.
    fn ancestors(&self, n: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = self.nodes[n].parent;
        while let Some(p) = cur {
            out.push(p);
            cur = self.nodes[p].parent;
        }
        out
    }

    /// Lowest common proper ancestor of two distinct nodes, if any.
    fn lowest_common_ancestor(&self, a: NodeId, b: NodeId) -> Option<NodeId> {
        let anc_a = self.ancestors(a);
        let anc_b = self.ancestors(b);
        anc_a.iter().copied().find(|x| anc_b.contains(x))
    }

    /// Step 3: find the related shot `j` for shot `i`, scanning
    /// `i−1, i−2, …, 0` (see module docs for why `i−1` is included).
    fn find_related(&self, i: usize) -> Option<usize> {
        (0..i).rev().find(|&j| {
            shots_related_with_threshold(self.shot_signs(i), self.shot_signs(j), self.threshold)
        })
    }

    /// Step 4 when the related shot is the immediate predecessor: shot `i`
    /// simply joins shot `i−1`'s scene.
    fn join_predecessor(&mut self, i: usize) {
        let prev = self.leaves[i - 1];
        match self.nodes[prev].parent {
            Some(p) => self.connect(self.leaves[i], p),
            None => {
                let en = self.new_empty();
                self.connect(prev, en);
                self.connect(self.leaves[i], en);
            }
        }
    }

    /// Step 4, the paper's three scenarios for `SN⁰_{i−1}` vs `SN⁰_j`.
    fn attach(&mut self, i: usize, j: usize) {
        if j == i - 1 {
            self.join_predecessor(i);
            return;
        }
        let p = self.leaves[i - 1];
        let q = self.leaves[j];
        let p_parentless = self.nodes[p].parent.is_none();
        let q_parentless = self.nodes[q].parent.is_none();
        if p_parentless && q_parentless {
            // Scenario 1: connect all scene nodes SN_j^0 .. SN_i^0 to a new
            // empty node. (Intermediate leaves may already sit in a subtree;
            // connecting each leaf's current oldest ancestor preserves the
            // single-parent invariant in that defensive case.)
            let en = self.new_empty();
            let mut seen = Vec::new();
            for t in j..=i {
                let top = self.oldest_ancestor(self.leaves[t]);
                if top != en && !seen.contains(&top) {
                    seen.push(top);
                    self.connect(top, en);
                }
            }
        } else if let Some(lca) = self.lowest_common_ancestor(p, q) {
            // Scenario 2: they share an ancestor; join it.
            self.connect(self.leaves[i], lca);
        } else {
            // Scenario 3: no shared ancestor. Shot i joins the previous
            // shot's subtree; then the two subtrees are united under a new
            // empty node.
            let mut top_prev = self.oldest_ancestor(p);
            if self.nodes[top_prev].is_leaf() {
                // Defensive: never give a leaf children — interpose an
                // empty node (the paper's scenarios implicitly assume the
                // previous shot is already grouped).
                let en = self.new_empty();
                self.connect(top_prev, en);
                top_prev = en;
            }
            self.connect(self.leaves[i], top_prev);
            let top_j = self.oldest_ancestor(q);
            debug_assert_ne!(top_j, top_prev);
            let en = self.new_empty();
            // Temporal order: the earlier subtree first (Figure 6(d) shows
            // EN1 left of EN2 under EN3).
            self.connect(top_j, en);
            self.connect(top_prev, en);
        }
    }

    /// Step 5: connect every parentless node to a root. If exactly one
    /// parentless node remains it *is* the root (avoids a single-child
    /// root; with more than one, the paper's new empty root is created).
    fn finish_root(&mut self) -> NodeId {
        let tops: Vec<NodeId> = (0..self.nodes.len())
            .filter(|&n| self.nodes[n].parent.is_none())
            .collect();
        if tops.len() == 1 {
            let only = tops[0];
            if !self.nodes[only].is_leaf() {
                return only;
            }
        }
        let root = self.new_empty();
        let tops: Vec<NodeId> = (0..self.nodes.len())
            .filter(|&n| n != root && self.nodes[n].parent.is_none())
            .collect();
        for t in tops {
            self.connect(t, root);
        }
        root
    }

    /// Step 6: name every empty node after the child whose shot has the
    /// longest run of identical `Sign^BA`s; inherit its representative
    /// frame; level = chosen child's level + 1.
    fn name_nodes(&mut self, root: NodeId) {
        // Post-order traversal without recursion.
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            order.push(n);
            stack.extend(self.nodes[n].children.iter().copied());
        }
        // Children appear after parents in `order`; reverse for post-order.
        for &n in order.iter().rev() {
            if self.nodes[n].is_leaf() {
                continue;
            }
            let mut best: Option<(usize, usize, usize, usize)> = None; // (run_len, neg? shot, level, rep)
            for &ch in &self.nodes[n].children {
                let m = self.nodes[ch].name_shot;
                let run = longest_sign_run(self.shot_signs(m)).1;
                let candidate = (run, m, self.nodes[ch].level, self.nodes[ch].rep_frame);
                best = Some(match best {
                    None => candidate,
                    Some(cur) => {
                        // Longest run wins; ties break toward the earliest
                        // shot (smallest id).
                        if candidate.0 > cur.0 || (candidate.0 == cur.0 && candidate.1 < cur.1) {
                            candidate
                        } else {
                            cur
                        }
                    }
                });
            }
            let (_, m, child_level, rep) =
                best.expect("empty internal nodes are never created without children");
            self.nodes[n].name_shot = m;
            self.nodes[n].level = child_level + 1;
            self.nodes[n].rep_frame = rep;
        }
    }

    fn build(mut self) -> SceneTree {
        // Step 2: i starts at the third shot.
        for i in 2..self.shots.len() {
            match self.find_related(i) {
                Some(j) => self.attach(i, j),
                None => {
                    let en = self.new_empty();
                    self.connect(self.leaves[i], en);
                }
            }
        }
        let root = self.finish_root();
        self.name_nodes(root);
        SceneTree {
            nodes: self.nodes,
            root,
            leaves: self.leaves,
        }
    }
}

/// Build a scene tree from the detected shots and the per-frame `Sign^BA`
/// sequence (indexed by absolute frame number).
///
/// # Panics
/// Panics if `shots` is empty or a shot's range exceeds `signs_ba`.
pub fn build_scene_tree(shots: &[Shot], signs_ba: &[Rgb]) -> SceneTree {
    build_scene_tree_with_config(shots, signs_ba, SceneTreeConfig::default())
}

/// [`build_scene_tree`] with an explicit configuration.
pub fn build_scene_tree_with_config(
    shots: &[Shot],
    signs_ba: &[Rgb],
    config: SceneTreeConfig,
) -> SceneTree {
    assert!(!shots.is_empty(), "cannot build a scene tree with no shots");
    let last = shots.last().unwrap();
    assert!(
        last.end < signs_ba.len(),
        "sign sequence shorter than the video"
    );
    Builder::new(shots, signs_ba, config.relationship_threshold_percent).build()
}

impl SceneTree {
    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// A node by id.
    pub fn node(&self, id: NodeId) -> &SceneNode {
        &self.nodes[id]
    }

    /// All nodes (arena order: leaves first, then internal nodes in
    /// creation order).
    pub fn nodes(&self) -> &[SceneNode] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// A scene tree always has at least one node.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The level-0 node of shot `s`.
    pub fn leaf_of_shot(&self, s: usize) -> Option<NodeId> {
        self.leaves.get(s).copied()
    }

    /// Number of shots (= leaves).
    pub fn shot_count(&self) -> usize {
        self.leaves.len()
    }

    /// Tree height: the maximum `level` over all nodes (leaves are 0).
    pub fn height(&self) -> usize {
        self.nodes.iter().map(|n| n.level).max().unwrap_or(0)
    }

    /// Proper ancestors of a node, nearest first.
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = self.nodes[id].parent;
        while let Some(p) = cur {
            out.push(p);
            cur = self.nodes[p].parent;
        }
        out
    }

    /// The *largest scene* for shot `m`: the highest ancestor of shot `m`'s
    /// leaf that is named after `m` (shares its representative frame). This
    /// is where index-guided browsing starts (§4.2).
    pub fn largest_scene_for_shot(&self, m: usize) -> Option<NodeId> {
        let leaf = self.leaf_of_shot(m)?;
        let mut best = leaf;
        for a in self.ancestors(leaf) {
            if self.nodes[a].name_shot == m {
                best = a;
            }
        }
        Some(best)
    }

    /// Depth-first pre-order traversal ids starting at the root.
    pub fn dfs(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            out.push(n);
            // Push children reversed so the leftmost child is visited first.
            for &c in self.nodes[n].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Validate structural invariants; returns a description of the first
    /// violation, if any. Used heavily by tests.
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        // Root has no parent.
        if self.nodes[self.root].parent.is_some() {
            return Err("root has a parent".into());
        }
        // Parent/child pointers agree.
        for n in &self.nodes {
            for &c in &n.children {
                if self.nodes[c].parent != Some(n.id) {
                    return Err(format!("child {c} of {} disowns it", n.id));
                }
            }
            if let Some(p) = n.parent {
                if !self.nodes[p].children.contains(&n.id) {
                    return Err(format!("parent {p} does not list child {}", n.id));
                }
            } else if n.id != self.root {
                return Err(format!("non-root node {} has no parent", n.id));
            }
            if n.is_leaf() && !n.children.is_empty() {
                return Err(format!("leaf {} has children", n.id));
            }
            if !n.is_leaf() && n.children.is_empty() {
                return Err(format!("internal node {} has no children", n.id));
            }
        }
        // Every node reachable from the root exactly once.
        let reach = self.dfs();
        if reach.len() != self.nodes.len() {
            return Err(format!(
                "reachable {} of {} nodes",
                reach.len(),
                self.nodes.len()
            ));
        }
        // Every shot appears in exactly one leaf.
        let mut shot_seen = vec![0usize; self.leaves.len()];
        for n in &self.nodes {
            if let Some(s) = n.shot {
                shot_seen[s] += 1;
            }
        }
        if let Some((s, &k)) = shot_seen.iter().enumerate().find(|&(_, &k)| k != 1) {
            return Err(format!("shot {s} appears in {k} leaves"));
        }
        // Levels: every internal node's level is one more than the chosen
        // child's, hence strictly greater than at least one child.
        for n in &self.nodes {
            if !n.is_leaf()
                && !n
                    .children
                    .iter()
                    .any(|&c| self.nodes[c].level + 1 == n.level)
            {
                return Err(format!(
                    "node {} level {} not derived from a child",
                    n.id, n.level
                ));
            }
        }
        Ok(())
    }

    /// The paper's `g(s)` extension (§3.1): up to `k` representative frames
    /// for a node, drawn from the longest same-sign runs of its named shot
    /// — "instead of having only one representative frame per scene, we can
    /// also use g(s) most repetitive representative frames for scenes with
    /// s shots to better convey their larger content."
    ///
    /// `shots` and `signs_ba` are the artifacts the tree was built from;
    /// returned values are absolute frame indices in temporal order.
    pub fn representatives(
        &self,
        node: NodeId,
        shots: &[Shot],
        signs_ba: &[Rgb],
        k: usize,
    ) -> Vec<usize> {
        let m = self.nodes[node].name_shot;
        let shot = &shots[m];
        crate::shot::top_representative_offsets(&signs_ba[shot.start..=shot.end], k)
            .into_iter()
            .map(|off| shot.start + off)
            .collect()
    }

    /// The leaf (shot) node whose frame range contains `frame`, given the
    /// shots the tree was built over. `None` when `frame` is past the end.
    /// This is the "jump to time T" entry point of a browsing UI: from the
    /// leaf, walk [`SceneTree::ancestors`] for the enclosing scenes.
    pub fn leaf_at_frame(&self, shots: &[Shot], frame: usize) -> Option<NodeId> {
        let idx = shots.partition_point(|s| s.end < frame);
        let shot = shots.get(idx)?;
        if !shot.contains(frame) {
            return None;
        }
        self.leaf_of_shot(idx)
    }

    /// The scene clusters of this tree: the distinct leaf-shot sets of its
    /// non-root internal nodes, each sorted. The basis of
    /// [`SceneTree::partition_distance`].
    pub fn scene_clusters(&self) -> Vec<Vec<usize>> {
        let mut clusters: Vec<Vec<usize>> = Vec::new();
        for n in &self.nodes {
            if n.is_leaf() || n.id == self.root {
                continue;
            }
            let mut shots = Vec::new();
            let mut stack = vec![n.id];
            while let Some(m) = stack.pop() {
                let nd = &self.nodes[m];
                if let Some(s) = nd.shot {
                    shots.push(s);
                }
                stack.extend(nd.children.iter().copied());
            }
            shots.sort_unstable();
            if !clusters.contains(&shots) {
                clusters.push(shots);
            }
        }
        clusters
    }

    /// Structural distance between two trees over the same shots: the
    /// Jaccard distance of their scene-cluster sets (a Robinson–Foulds-
    /// style measure). 0.0 = identical grouping, 1.0 = no scene in common.
    /// Used by the threshold-stability analyses.
    ///
    /// # Panics
    /// Panics if the trees cover different shot counts.
    pub fn partition_distance(&self, other: &SceneTree) -> f64 {
        assert_eq!(
            self.shot_count(),
            other.shot_count(),
            "trees must cover the same shots"
        );
        let a = self.scene_clusters();
        let b = other.scene_clusters();
        if a.is_empty() && b.is_empty() {
            return 0.0;
        }
        let shared = a.iter().filter(|c| b.contains(c)).count();
        let union = a.len() + b.len() - shared;
        1.0 - shared as f64 / union as f64
    }

    /// Render the tree as indented ASCII, e.g. for the Figure 7 experiment.
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        self.render_node(self.root, 0, &mut out);
        out
    }

    fn render_node(&self, id: NodeId, depth: usize, out: &mut String) {
        let n = &self.nodes[id];
        for _ in 0..depth {
            out.push_str("  ");
        }
        if let Some(s) = n.shot {
            out.push_str(&format!(
                "{} [shot#{} rep-frame {}]\n",
                n.name(),
                s + 1,
                n.rep_frame
            ));
        } else {
            out.push_str(&format!("{} [rep-frame {}]\n", n.name(), n.rep_frame));
        }
        for &c in &n.children {
            self.render_node(c, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Build shots with constant per-shot signs from `(label, len)` pairs;
    /// same label ⇒ identical background ⇒ related (D_s = 0).
    fn scripted(labels: &[(u8, usize)]) -> (Vec<Shot>, Vec<Rgb>) {
        let mut shots = Vec::new();
        let mut signs = Vec::new();
        let mut start = 0usize;
        for (id, &(label, len)) in labels.iter().enumerate() {
            shots.push(Shot {
                id,
                start,
                end: start + len - 1,
            });
            // Labels spaced 40 gray-levels apart: D_s = 40/256 = 15.6% > 10%.
            signs.extend(std::iter::repeat(Rgb::gray(label * 40)).take(len));
            start += len;
        }
        (shots, signs)
    }

    /// The Figure 5/6 worked example: ten shots A B A1 B1 C A2 C1 D D1 D2.
    /// Shot lengths descend so shot#1 wins every naming contest it enters,
    /// as in the paper's narration.
    fn figure5_clip() -> (Vec<Shot>, Vec<Rgb>) {
        // labels: A=0, B=1, C=2, D=3
        scripted(&[
            (0, 20), // 1 A
            (1, 10), // 2 B
            (0, 9),  // 3 A1
            (1, 8),  // 4 B1
            (2, 12), // 5 C
            (0, 7),  // 6 A2
            (2, 13), // 7 C1  (longest within EN2 -> EN2 named SN_7^1)
            (3, 11), // 8 D
            (3, 6),  // 9 D1
            (3, 5),  // 10 D2
        ])
    }

    /// Golden test: the full Figure 6(g) structure.
    #[test]
    fn figure6_structure() {
        let (shots, signs) = figure5_clip();
        let tree = build_scene_tree(&shots, &signs);
        tree.check_invariants().unwrap();

        let leaf = |s: usize| tree.leaf_of_shot(s).unwrap();
        let parent = |n: NodeId| tree.node(n).parent.unwrap();

        // EN1 = parent of shots 1..4 (ids 0..=3).
        let en1 = parent(leaf(0));
        for s in 0..4 {
            assert_eq!(parent(leaf(s)), en1, "shot#{} must sit under EN1", s + 1);
        }
        // EN2 = parent of shots 5, 6, 7 (ids 4..=6).
        let en2 = parent(leaf(4));
        for s in 4..7 {
            assert_eq!(parent(leaf(s)), en2, "shot#{} must sit under EN2", s + 1);
        }
        assert_ne!(en1, en2);
        // EN3 = common parent of EN1 and EN2.
        let en3 = parent(en1);
        assert_eq!(parent(en2), en3);
        // EN4 = parent of shots 8, 9, 10.
        let en4 = parent(leaf(7));
        assert_eq!(parent(leaf(8)), en4, "shot#9 joins EN4 (Fig. 6(g))");
        assert_eq!(parent(leaf(9)), en4, "shot#10 joins EN4 (Fig. 6(g))");
        // Root = parent of EN3 and EN4.
        let root = parent(en3);
        assert_eq!(parent(en4), root);
        assert_eq!(root, tree.root());
        assert_eq!(tree.node(root).parent, None);

        // Naming (paper narration): EN1 -> SN_1^1, EN3 -> SN_1^2; EN2 is
        // named after its longest-run child (shot#7 here) -> SN_7^1.
        assert_eq!(tree.node(en1).name(), "SN_1^1");
        assert_eq!(tree.node(en3).name(), "SN_1^2");
        assert_eq!(tree.node(en2).name(), "SN_7^1");
        assert_eq!(tree.node(en4).name(), "SN_8^1");
        // Root: children levels are 2 (EN3) and 1 (EN4); shot#1's run (20)
        // beats shot#8's (11) -> SN_1^3.
        assert_eq!(tree.node(root).name(), "SN_1^3");
        assert_eq!(tree.height(), 3);

        // Representative frames propagate: EN3 shows shot#1's rep frame.
        assert_eq!(tree.node(en3).rep_frame, tree.node(leaf(0)).rep_frame);
    }

    #[test]
    fn figure6_largest_scenes() {
        let (shots, signs) = figure5_clip();
        let tree = build_scene_tree(&shots, &signs);
        // Shot#1's largest scene is the root (named SN_1^3).
        let big1 = tree.largest_scene_for_shot(0).unwrap();
        assert_eq!(big1, tree.root());
        // Shot#7's largest scene is EN2 (SN_7^1).
        let big7 = tree.largest_scene_for_shot(6).unwrap();
        assert_eq!(tree.node(big7).name(), "SN_7^1");
        // Shot#2 names nothing: its largest scene is its own leaf.
        let big2 = tree.largest_scene_for_shot(1).unwrap();
        assert_eq!(big2, tree.leaf_of_shot(1).unwrap());
    }

    #[test]
    fn single_shot_tree() {
        let (shots, signs) = scripted(&[(0, 5)]);
        let tree = build_scene_tree(&shots, &signs);
        tree.check_invariants().unwrap();
        assert_eq!(tree.shot_count(), 1);
        // One leaf under a root created by step 5.
        assert_eq!(tree.len(), 2);
        assert_eq!(tree.height(), 1);
    }

    #[test]
    fn two_unrelated_shots() {
        let (shots, signs) = scripted(&[(0, 5), (1, 5)]);
        let tree = build_scene_tree(&shots, &signs);
        tree.check_invariants().unwrap();
        // Loop never runs (starts at third shot): both leaves hang off the root.
        assert_eq!(tree.len(), 3);
        let r = tree.root();
        assert_eq!(tree.node(r).children.len(), 2);
    }

    #[test]
    fn all_related_shots_form_one_scene() {
        let (shots, signs) = scripted(&[(0, 5), (0, 5), (0, 5), (0, 5), (0, 5)]);
        let tree = build_scene_tree(&shots, &signs);
        tree.check_invariants().unwrap();
        // shot#3 relates to shot#2 (i−1): EN over {1?...}. Trace: i=2 (0-based)
        // relates to j=1 -> join_predecessor -> EN{leaf1, leaf2}... then each
        // later shot joins the same EN. Shot#1 (leaf 0) is picked up by the
        // root step.
        let en = tree.node(tree.leaf_of_shot(2).unwrap()).parent.unwrap();
        assert_eq!(tree.node(tree.leaf_of_shot(1).unwrap()).parent, Some(en));
        assert_eq!(tree.node(tree.leaf_of_shot(3).unwrap()).parent, Some(en));
        assert_eq!(tree.node(tree.leaf_of_shot(4).unwrap()).parent, Some(en));
    }

    #[test]
    fn alternating_dialogue_groups_under_one_scene() {
        // A B A B A B — the classic two-camera dialogue; Figure 6(a)/(b)
        // logic groups them all under EN1.
        let (shots, signs) = scripted(&[(0, 5), (1, 5), (0, 5), (1, 5), (0, 5), (1, 5)]);
        let tree = build_scene_tree(&shots, &signs);
        tree.check_invariants().unwrap();
        let en1 = tree.node(tree.leaf_of_shot(0).unwrap()).parent.unwrap();
        for s in 0..6 {
            assert_eq!(
                tree.node(tree.leaf_of_shot(s).unwrap()).parent,
                Some(en1),
                "shot {} must join the dialogue scene",
                s + 1
            );
        }
    }

    #[test]
    fn unrelated_run_creates_new_scene_each_time() {
        let (shots, signs) = scripted(&[(0, 4), (1, 4), (2, 4), (3, 4), (4, 4), (5, 4)]);
        let tree = build_scene_tree(&shots, &signs);
        tree.check_invariants().unwrap();
        // Every shot from the third onward got its own empty parent; no two
        // leaves share a parent.
        for a in 2..6 {
            for b in (a + 1)..6 {
                assert_ne!(
                    tree.node(tree.leaf_of_shot(a).unwrap()).parent,
                    tree.node(tree.leaf_of_shot(b).unwrap()).parent
                );
            }
        }
    }

    #[test]
    fn naming_prefers_longest_run_then_earliest() {
        // Two related shots with different run lengths: the longer run names
        // the scene; equal runs -> earliest shot.
        let (shots, signs) = scripted(&[(0, 3), (1, 5), (0, 9)]);
        let tree = build_scene_tree(&shots, &signs);
        tree.check_invariants().unwrap();
        let en1 = tree.node(tree.leaf_of_shot(0).unwrap()).parent.unwrap();
        // Children: shots 1 (run 3), 2 (run 5), 3 (run 9) -> named SN_3^1.
        assert_eq!(tree.node(en1).name(), "SN_3^1");

        let (shots, signs) = scripted(&[(0, 5), (1, 5), (0, 5)]);
        let tree = build_scene_tree(&shots, &signs);
        let en1 = tree.node(tree.leaf_of_shot(0).unwrap()).parent.unwrap();
        assert_eq!(tree.node(en1).name(), "SN_1^1", "ties break earliest");
    }

    #[test]
    fn leaf_at_frame_lookup() {
        let (shots, signs) = figure5_clip();
        let tree = build_scene_tree(&shots, &signs);
        // Frame 0 is in shot#1; frame 19 still shot#1; frame 20 shot#2.
        assert_eq!(tree.leaf_at_frame(&shots, 0), tree.leaf_of_shot(0));
        assert_eq!(tree.leaf_at_frame(&shots, 19), tree.leaf_of_shot(0));
        assert_eq!(tree.leaf_at_frame(&shots, 20), tree.leaf_of_shot(1));
        let last = shots.last().unwrap();
        assert_eq!(tree.leaf_at_frame(&shots, last.end), tree.leaf_of_shot(9));
        assert_eq!(tree.leaf_at_frame(&shots, last.end + 1), None);
    }

    #[test]
    fn partition_distance_properties() {
        let (shots, signs) = figure5_clip();
        let tree = build_scene_tree(&shots, &signs);
        assert_eq!(tree.partition_distance(&tree), 0.0);
        // A different threshold changes the grouping.
        let lax = build_scene_tree_with_config(
            &shots,
            &signs,
            SceneTreeConfig {
                relationship_threshold_percent: 90.0,
            },
        );
        let d = tree.partition_distance(&lax);
        assert!(d > 0.0 && d <= 1.0, "distance {d}");
        assert!((tree.partition_distance(&lax) - lax.partition_distance(&tree)).abs() < 1e-12);
        // Clusters of the Figure 6 tree: EN1{1-4}, EN2{5-7}, EN3{1-7}, EN4{8-10}.
        let clusters = tree.scene_clusters();
        assert!(clusters.contains(&vec![0, 1, 2, 3]));
        assert!(clusters.contains(&vec![4, 5, 6]));
        assert!(clusters.contains(&vec![0, 1, 2, 3, 4, 5, 6]));
        assert!(clusters.contains(&vec![7, 8, 9]));
        assert_eq!(clusters.len(), 4);
    }

    #[test]
    fn g_of_s_representatives() {
        // A shot with three distinct sign runs: k representatives come from
        // the k longest runs, in temporal order, as absolute frame indices.
        let mut signs = Vec::new();
        signs.extend(std::iter::repeat(Rgb::gray(10)).take(6)); // frames 0-5
        signs.extend(std::iter::repeat(Rgb::gray(50)).take(2)); // 6-7
        signs.extend(std::iter::repeat(Rgb::gray(90)).take(4)); // 8-11
        let shots = vec![Shot {
            id: 0,
            start: 0,
            end: 11,
        }];
        let tree = build_scene_tree(&shots, &signs);
        let leaf = tree.leaf_of_shot(0).unwrap();
        assert_eq!(tree.representatives(leaf, &shots, &signs, 1), vec![0]);
        assert_eq!(tree.representatives(leaf, &shots, &signs, 2), vec![0, 8]);
        assert_eq!(tree.representatives(leaf, &shots, &signs, 9), vec![0, 6, 8]);
        // Internal nodes answer through their named shot; absolute offsets
        // respect the shot's start.
        let (shots2, signs2) = scripted(&[(0, 4), (0, 6)]);
        let tree2 = build_scene_tree(&shots2, &signs2);
        let leaf2 = tree2.leaf_of_shot(1).unwrap();
        assert_eq!(tree2.representatives(leaf2, &shots2, &signs2, 1), vec![4]);
    }

    #[test]
    fn ascii_render_contains_all_names() {
        let (shots, signs) = figure5_clip();
        let tree = build_scene_tree(&shots, &signs);
        let art = tree.render_ascii();
        for n in tree.nodes() {
            assert!(art.contains(&n.name()), "render must mention {}", n.name());
        }
        // Leaves mention their shot number.
        assert!(art.contains("shot#10"));
    }

    #[test]
    #[should_panic(expected = "no shots")]
    fn empty_shots_panic() {
        build_scene_tree(&[], &[]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random label scripts always yield structurally valid trees
        /// containing every shot exactly once.
        #[test]
        fn prop_tree_invariants(labels in prop::collection::vec((0u8..5, 1usize..6), 1..24)) {
            let (shots, signs) = scripted(&labels);
            let tree = build_scene_tree(&shots, &signs);
            prop_assert!(tree.check_invariants().is_ok(), "{:?}", tree.check_invariants());
            prop_assert_eq!(tree.shot_count(), labels.len());
            // Height bounded by node count.
            prop_assert!(tree.height() < tree.len());
            // dfs covers everything exactly once.
            let mut ids = tree.dfs();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), tree.len());
        }

        /// The representative frame of every node lies inside its named
        /// shot's frame range.
        #[test]
        fn prop_rep_frames_inside_named_shot(labels in prop::collection::vec((0u8..4, 1usize..6), 1..20)) {
            let (shots, signs) = scripted(&labels);
            let tree = build_scene_tree(&shots, &signs);
            for n in tree.nodes() {
                let shot = &shots[n.name_shot];
                prop_assert!(shot.contains(n.rep_frame),
                    "node {} rep {} outside shot {:?}", n.name(), n.rep_frame, shot);
            }
        }

        /// Content anchoring: every non-root internal node with at least two
        /// leaf descendants contains a shot that is RELATIONSHIP-related to
        /// another shot under the node's *parent*. (The pair is not always
        /// inside the node itself: in the paper's own Figure 6(d), EN2 holds
        /// {C, A2} with the anchor A2~A1 sitting across EN3. And scenes may
        /// absorb interleaved unrelated shots, Fig. 6(a).)
        #[test]
        fn prop_scenes_anchored_by_related_pair(labels in prop::collection::vec((0u8..5, 1usize..5), 1..20)) {
            use crate::relationship::shots_related;
            let (shots, signs) = scripted(&labels);
            let tree = build_scene_tree(&shots, &signs);
            let shot_signs = |s: usize| {
                let shot = &shots[s];
                &signs[shot.start..=shot.end]
            };
            let leaves_under = |root: NodeId| {
                let mut out = Vec::new();
                let mut stack = vec![root];
                while let Some(n) = stack.pop() {
                    let nd = tree.node(n);
                    if let Some(s) = nd.shot {
                        out.push(s);
                    }
                    stack.extend(nd.children.iter().copied());
                }
                out
            };
            for node in tree.nodes() {
                if node.is_leaf() || node.id == tree.root() {
                    continue;
                }
                let inside = leaves_under(node.id);
                if inside.len() < 2 {
                    continue;
                }
                let scope = leaves_under(node.parent.expect("non-root"));
                let anchored = inside.iter().any(|&a| {
                    scope.iter().any(|&b| {
                        a != b
                            && (shots_related(shot_signs(a), shot_signs(b))
                                || shots_related(shot_signs(b), shot_signs(a)))
                    })
                });
                prop_assert!(anchored, "node {} shots {:?} unanchored", node.name(), inside);
            }
        }

        /// The "largest scene" of a shot is the shot's own leaf or one of
        /// its ancestors, and is always named after that shot.
        #[test]
        fn prop_largest_scene_is_ancestor(labels in prop::collection::vec((0u8..4, 1usize..5), 1..16)) {
            let (shots, signs) = scripted(&labels);
            let tree = build_scene_tree(&shots, &signs);
            for s in 0..shots.len() {
                let big = tree.largest_scene_for_shot(s).unwrap();
                let leaf = tree.leaf_of_shot(s).unwrap();
                prop_assert!(big == leaf || tree.ancestors(leaf).contains(&big));
                prop_assert_eq!(tree.node(big).name_shot, s);
            }
        }
    }
}
