//! The Gaussian-pyramid *size set* (Eq. 1 of the paper) and the
//! nearest-value approximation of Table 1.
//!
//! The modified Gaussian pyramid reduces 5 pixels to 1, 13 to 5, 29 to 13,
//! and so on, which means every reducible length must belong to the set
//!
//! ```text
//! s_j = 1 + sum_{i=2..j} 2^i  =  {1, 5, 13, 29, 61, 125, 253, ...}
//! ```
//!
//! (equivalently `s_{j+1} = 2·s_j + 3`). The raw background/object-area
//! dimensions `h', b', w', L'` computed from the frame dimensions are snapped
//! to the nearest member with `j = 2 + ⌊log2((x + 3) / 6)⌋` before the
//! pyramid is applied (§2.2, Table 1).

/// The `j`-th element of the size set (1-indexed, as in Eq. 1).
///
/// `size_set(1) = 1`, `size_set(2) = 5`, `size_set(3) = 13`, ...
///
/// # Panics
/// Panics if `j == 0` (the paper indexes from 1) or if the value would
/// overflow `usize` (far beyond any realistic frame dimension).
pub fn size_set(j: u32) -> usize {
    assert!(j >= 1, "size set is 1-indexed (Eq. 1: j = 1, 2, 3, ...)");
    // s_j = 1 + (2^2 + 2^3 + ... + 2^j) = 2^(j+1) - 3 for j >= 2; s_1 = 1.
    if j == 1 {
        1
    } else {
        (1usize << (j + 1)) - 3
    }
}

/// Whether `len` is a member of the size set.
pub fn in_size_set(len: usize) -> bool {
    let mut s = 1usize;
    loop {
        if s == len {
            return true;
        }
        if s > len {
            return false;
        }
        s = 2 * s + 3;
    }
}

/// The previous element of the size set: the length one pyramid reduction
/// step produces. Returns `None` for inputs not in the set or for 1.
pub fn reduce_len(len: usize) -> Option<usize> {
    if len <= 1 || !in_size_set(len) {
        return None;
    }
    Some((len - 3) / 2)
}

/// Snap a raw dimension to the nearest size-set member using the paper's
/// closed form `j = 2 + ⌊log2((x + 3) / 6)⌋`, then Eq. 1.
///
/// Reproduces Table 1 exactly:
///
/// ```
/// use vdb_core::sizeset::snap;
/// assert_eq!(snap(1), 1);
/// assert_eq!(snap(2), 1);
/// assert_eq!(snap(3), 5);
/// assert_eq!(snap(8), 5);
/// assert_eq!(snap(9), 13);
/// assert_eq!(snap(16), 13); // the paper's worked example: w' = 160/10 = 16
/// assert_eq!(snap(20), 13);
/// assert_eq!(snap(21), 29);
/// assert_eq!(snap(44), 29);
/// assert_eq!(snap(45), 61);
/// assert_eq!(snap(92), 61);
/// ```
///
/// # Panics
/// Panics if `raw == 0`; a zero dimension means the frame was too small and
/// should have been rejected earlier (see `geometry`).
pub fn snap(raw: usize) -> usize {
    assert!(raw > 0, "cannot snap a zero dimension to the size set");
    let ratio = (raw + 3) as f64 / 6.0;
    if ratio < 1.0 {
        // log2 would be negative; these are the raw values 1 and 2 -> j = 1.
        return size_set(1);
    }
    let j = 2 + ratio.log2().floor() as u32;
    size_set(j)
}

/// Number of pyramid reduction steps needed to take a size-set member down
/// to a single pixel. `steps_to_one(1) = 0`, `steps_to_one(13) = 2`, etc.
/// Returns `None` if `len` is not in the size set.
pub fn steps_to_one(len: usize) -> Option<u32> {
    if !in_size_set(len) {
        return None;
    }
    let mut n = len;
    let mut steps = 0;
    while n > 1 {
        n = (n - 3) / 2;
        steps += 1;
    }
    Some(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn size_set_matches_eq1() {
        // Eq. 1 evaluated directly: s_j = 1 + sum_{i=2}^{j} 2^i.
        for j in 1..=10u32 {
            let direct: usize = 1 + (2..=j).map(|i| 1usize << i).sum::<usize>();
            assert_eq!(size_set(j), direct, "j = {j}");
        }
        assert_eq!(
            (1..=7).map(size_set).collect::<Vec<_>>(),
            vec![1, 5, 13, 29, 61, 125, 253]
        );
    }

    #[test]
    fn recurrence_holds() {
        for j in 1..=12u32 {
            assert_eq!(size_set(j + 1), 2 * size_set(j) + 3);
        }
    }

    #[test]
    fn membership() {
        for j in 1..=10u32 {
            assert!(in_size_set(size_set(j)));
        }
        for bad in [0usize, 2, 3, 4, 6, 12, 14, 28, 30, 60, 62, 124, 126] {
            assert!(!in_size_set(bad), "{bad} wrongly in size set");
        }
    }

    #[test]
    fn reduce_len_steps_down() {
        assert_eq!(reduce_len(5), Some(1));
        assert_eq!(reduce_len(13), Some(5));
        assert_eq!(reduce_len(253), Some(125));
        assert_eq!(reduce_len(1), None);
        assert_eq!(reduce_len(7), None);
    }

    /// Golden test: the full Table 1 of the paper.
    #[test]
    fn table1_nearest_value_approximation() {
        let table: &[(std::ops::RangeInclusive<usize>, usize)] = &[
            (1..=2, 1),
            (3..=8, 5),
            (9..=20, 13),
            (21..=44, 29),
            (45..=92, 61),
        ];
        for (range, expected) in table {
            for raw in range.clone() {
                assert_eq!(snap(raw), *expected, "raw = {raw}");
            }
        }
        // The row the paper elides ("..."): 93..=188 -> 125.
        assert_eq!(snap(93), 125);
        assert_eq!(snap(188), 125);
        assert_eq!(snap(189), 253);
    }

    #[test]
    fn paper_worked_example_c160() {
        // §2.2: c = 160 -> w' = 16 -> j = 3 -> w = 13.
        let w_prime = 160 / 10;
        assert_eq!(snap(w_prime), 13);
    }

    #[test]
    fn steps_to_one_counts_reductions() {
        assert_eq!(steps_to_one(1), Some(0));
        assert_eq!(steps_to_one(5), Some(1));
        assert_eq!(steps_to_one(13), Some(2));
        assert_eq!(steps_to_one(253), Some(6));
        assert_eq!(steps_to_one(7), None);
    }

    proptest! {
        #[test]
        fn prop_snap_lands_in_size_set(raw in 1usize..100_000) {
            prop_assert!(in_size_set(snap(raw)));
        }

        #[test]
        fn prop_snap_idempotent_on_members(j in 1u32..=14) {
            let s = size_set(j);
            prop_assert_eq!(snap(s), s);
        }

        #[test]
        fn prop_snap_monotonic(a in 1usize..50_000, b in 1usize..50_000) {
            if a <= b {
                prop_assert!(snap(a) <= snap(b));
            }
        }

        #[test]
        fn prop_snap_follows_paper_formula(raw in 1usize..100_000) {
            // The closed form and the "nearest member" description agree on
            // the boundaries Table 1 lists; verify snap() always returns the
            // member chosen by the paper's j formula.
            let ratio = (raw + 3) as f64 / 6.0;
            let j = if ratio < 1.0 { 1 } else { 2 + ratio.log2().floor() as u32 };
            prop_assert_eq!(snap(raw), size_set(j));
        }
    }
}
