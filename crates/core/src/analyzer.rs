//! End-to-end analysis facade: Steps 1–3 of the paper's methodology in one
//! call.
//!
//! * **Step 1** — segment the video into shots with the camera-tracking SBD
//!   and extract the per-frame signs;
//! * **Step 2** — build the scene tree from the shots;
//! * **Step 3** — compute each shot's `(Var^BA, Var^OA)` feature vector,
//!   ready to be inserted into a [`crate::index::VarianceIndex`].

use crate::error::Result;
use crate::frame::Video;
use crate::parallel::Parallelism;
use crate::pipeline::AnalysisEngine;
use crate::pixel::Rgb;
use crate::sbd::{SbdConfig, Segmentation};
use crate::scenetree::{SceneTree, SceneTreeConfig};
use crate::shot::Shot;
use crate::simd::SimdLevel;
use crate::variance::ShotFeature;
use serde::{Deserialize, Serialize};

/// Combined configuration for the full pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AnalyzerConfig {
    /// Shot boundary detection thresholds.
    pub sbd: SbdConfig,
    /// Scene-tree construction parameters.
    pub scene_tree: SceneTreeConfig,
    /// Worker threads for per-frame feature extraction. The cascade and
    /// everything after it stay sequential, so the analysis is identical
    /// for every setting — this knob only changes wall-clock time.
    pub parallelism: Parallelism,
    /// SIMD instruction set for the extraction kernels. Every level
    /// produces bit-identical features — like [`AnalyzerConfig::parallelism`],
    /// this knob only changes wall-clock time.
    pub simd: SimdLevel,
}

/// Everything the pipeline derives from one video.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoAnalysis {
    /// Per-frame background signs (`Sign_i^BA`).
    pub signs_ba: Vec<Rgb>,
    /// Per-frame object-area signs (`Sign_i^OA`).
    pub signs_oa: Vec<Rgb>,
    /// The segmentation (shots, boundaries, cascade statistics).
    pub segmentation: Segmentation,
    /// The browsing hierarchy.
    pub scene_tree: SceneTree,
    /// Per-shot feature vectors, aligned with `segmentation.shots`.
    pub features: Vec<ShotFeature>,
}

impl VideoAnalysis {
    /// The shots.
    pub fn shots(&self) -> &[Shot] {
        &self.segmentation.shots
    }

    /// `(Var^BA, Var^OA)` of one shot.
    pub fn feature_of(&self, shot: usize) -> Option<ShotFeature> {
        self.features.get(shot).copied()
    }

    /// The per-frame `Sign^BA` slice of one shot.
    pub fn shot_signs_ba(&self, shot: usize) -> Option<&[Rgb]> {
        let s = self.segmentation.shots.get(shot)?;
        Some(&self.signs_ba[s.start..=s.end])
    }

    /// Number of frames analyzed.
    pub fn frame_count(&self) -> usize {
        self.signs_ba.len()
    }
}

/// The full Steps 1–3 pipeline, as a one-call batch facade.
///
/// A thin driver over [`AnalysisEngine`] — the analysis logic itself lives
/// in [`crate::pipeline`]; this type only packages "one video in, one
/// [`VideoAnalysis`] out". Code analyzing many clips back to back should
/// hold an [`AnalysisEngine`] directly so its scratch arena is reused
/// across clips.
#[derive(Debug, Clone, Default)]
pub struct VideoAnalyzer {
    config: AnalyzerConfig,
}

impl VideoAnalyzer {
    /// Analyzer with default (paper-calibrated) thresholds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Analyzer with explicit configuration.
    pub fn with_config(config: AnalyzerConfig) -> Self {
        VideoAnalyzer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &AnalyzerConfig {
        &self.config
    }

    /// Run Steps 1–3 on a video.
    pub fn analyze(&self, video: &Video) -> Result<VideoAnalysis> {
        AnalysisEngine::new(self.config).analyze(video)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameBuf;

    fn two_scene_video() -> Video {
        let mut frames = Vec::new();
        // Two palettes far apart, each with mild texture: the cut between
        // them is unambiguous at every cascade stage.
        let tex = |base: Rgb, x: u32, y: u32| {
            let n = ((x * 7 + y * 13) % 16) as u8;
            Rgb::new(
                base.r().saturating_add(n),
                base.g().saturating_add(n),
                base.b().saturating_add(n),
            )
        };
        for _ in 0..6 {
            frames.push(FrameBuf::from_fn(80, 60, |x, y| {
                tex(Rgb::new(200, 60, 40), x, y)
            }));
        }
        for _ in 0..6 {
            frames.push(FrameBuf::from_fn(80, 60, |x, y| {
                tex(Rgb::new(30, 90, 210), x, y)
            }));
        }
        Video::new(frames, 3.0).unwrap()
    }

    #[test]
    fn full_pipeline_produces_consistent_artifacts() {
        let analysis = VideoAnalyzer::new().analyze(&two_scene_video()).unwrap();
        assert_eq!(analysis.frame_count(), 12);
        assert_eq!(analysis.shots().len(), 2);
        assert_eq!(analysis.features.len(), 2);
        assert_eq!(analysis.scene_tree.shot_count(), 2);
        analysis.scene_tree.check_invariants().unwrap();
        // Static shots: zero variance in both areas.
        for f in &analysis.features {
            assert_eq!(f.var_ba, 0.0);
            assert_eq!(f.var_oa, 0.0);
        }
        // Per-shot sign slices line up with shots.
        let s0 = analysis.shot_signs_ba(0).unwrap();
        assert_eq!(s0.len(), analysis.shots()[0].len());
        assert!(analysis.shot_signs_ba(5).is_none());
    }

    #[test]
    fn analysis_is_deterministic() {
        let v = two_scene_video();
        let a = VideoAnalyzer::new().analyze(&v).unwrap();
        let b = VideoAnalyzer::new().analyze(&v).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_config_yields_identical_analysis() {
        let v = two_scene_video();
        let serial = VideoAnalyzer::new().analyze(&v).unwrap();
        for p in [
            Parallelism::Threads(2),
            Parallelism::Threads(4),
            Parallelism::Auto,
        ] {
            let cfg = AnalyzerConfig {
                parallelism: p,
                ..AnalyzerConfig::default()
            };
            assert_eq!(VideoAnalyzer::with_config(cfg).analyze(&v).unwrap(), serial);
        }
    }

    #[test]
    fn config_plumbs_through() {
        let cfg = AnalyzerConfig {
            sbd: SbdConfig {
                track_min_score: 0.5,
                ..SbdConfig::default()
            },
            scene_tree: SceneTreeConfig {
                relationship_threshold_percent: 5.0,
            },
            parallelism: Parallelism::Threads(2),
            simd: SimdLevel::Scalar,
        };
        let an = VideoAnalyzer::with_config(cfg);
        assert_eq!(an.config().sbd.track_min_score, 0.5);
        assert_eq!(an.config().scene_tree.relationship_threshold_percent, 5.0);
        assert_eq!(an.config().simd, SimdLevel::Scalar);
        an.analyze(&two_scene_video()).unwrap();
    }

    #[test]
    fn simd_config_yields_identical_analysis() {
        let v = two_scene_video();
        let reference = VideoAnalyzer::new().analyze(&v).unwrap();
        for simd in SimdLevel::all_available() {
            let cfg = AnalyzerConfig {
                simd,
                ..AnalyzerConfig::default()
            };
            assert_eq!(
                VideoAnalyzer::with_config(cfg).analyze(&v).unwrap(),
                reference,
                "analysis must be bit-identical at {simd}"
            );
        }
    }
}
