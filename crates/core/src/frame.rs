//! Owned RGB frame buffers.
//!
//! The paper's pipeline consumes decoded RGB frames (their clips were
//! 160×120 AVI at 3 frames/second). [`FrameBuf`] is the decoded-frame type
//! shared between the analysis pipeline and the synthetic video substrate.

use crate::error::{CoreError, Result};
use crate::pixel::Rgb;

/// An owned, row-major RGB frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameBuf {
    width: u32,
    height: u32,
    data: Vec<Rgb>,
}

impl FrameBuf {
    /// Create a frame filled with a single color.
    pub fn filled(width: u32, height: u32, color: Rgb) -> Self {
        FrameBuf {
            width,
            height,
            data: vec![color; (width as usize) * (height as usize)],
        }
    }

    /// Create a black frame.
    pub fn black(width: u32, height: u32) -> Self {
        Self::filled(width, height, Rgb::BLACK)
    }

    /// Create a frame from raw pixel data (row-major, `width * height` long).
    pub fn from_pixels(width: u32, height: u32, data: Vec<Rgb>) -> Result<Self> {
        let expected = (width as usize) * (height as usize);
        if data.len() != expected {
            return Err(CoreError::FrameDataMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(FrameBuf {
            width,
            height,
            data,
        })
    }

    /// Pack the frame as raw RGB24 bytes: row-major, three bytes per
    /// pixel. This is the payload format streaming-ingest clients push
    /// over the wire.
    pub fn to_rgb24(&self) -> Vec<u8> {
        crate::pixel::rgb_as_bytes(&self.data).to_vec()
    }

    /// Rebuild a frame from raw RGB24 bytes (the inverse of
    /// [`FrameBuf::to_rgb24`]); `data.len()` must be exactly
    /// `width * height * 3`.
    pub fn from_rgb24(width: u32, height: u32, data: &[u8]) -> Result<Self> {
        let expected = (width as usize) * (height as usize) * 3;
        if data.len() != expected {
            return Err(CoreError::FrameDataMismatch {
                expected,
                actual: data.len(),
            });
        }
        let pixels = data
            .chunks_exact(3)
            .map(|c| Rgb([c[0], c[1], c[2]]))
            .collect();
        FrameBuf::from_pixels(width, height, pixels)
    }

    /// Create a frame by evaluating `f(x, y)` at every pixel.
    pub fn from_fn(width: u32, height: u32, mut f: impl FnMut(u32, u32) -> Rgb) -> Self {
        let mut data = Vec::with_capacity((width as usize) * (height as usize));
        for y in 0..height {
            for x in 0..width {
                data.push(f(x, y));
            }
        }
        FrameBuf {
            width,
            height,
            data,
        }
    }

    /// Frame width in pixels (`c` in the paper's notation).
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Frame height in pixels (`r` in the paper's notation).
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// `(width, height)` pair.
    #[inline]
    pub fn dims(&self) -> (u32, u32) {
        (self.width, self.height)
    }

    /// Total number of pixels.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the frame has zero pixels.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable access to the raw row-major pixel data.
    #[inline]
    pub fn pixels(&self) -> &[Rgb] {
        &self.data
    }

    /// Mutable access to the raw row-major pixel data.
    #[inline]
    pub fn pixels_mut(&mut self) -> &mut [Rgb] {
        &mut self.data
    }

    /// Pixel at `(x, y)`. Panics if out of bounds (debug-friendly: callers in
    /// the pipeline always iterate within computed geometry).
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> Rgb {
        debug_assert!(x < self.width && y < self.height);
        self.data[(y as usize) * (self.width as usize) + (x as usize)]
    }

    /// Pixel at `(x, y)` clamped to the frame borders. Used by samplers that
    /// may compute coordinates slightly past the edge.
    #[inline]
    pub fn get_clamped(&self, x: i64, y: i64) -> Rgb {
        let cx = x.clamp(0, i64::from(self.width) - 1) as u32;
        let cy = y.clamp(0, i64::from(self.height) - 1) as u32;
        self.get(cx, cy)
    }

    /// Set the pixel at `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, p: Rgb) {
        debug_assert!(x < self.width && y < self.height);
        self.data[(y as usize) * (self.width as usize) + (x as usize)] = p;
    }

    /// One row of pixels.
    #[inline]
    pub fn row(&self, y: u32) -> &[Rgb] {
        let w = self.width as usize;
        let start = (y as usize) * w;
        &self.data[start..start + w]
    }

    /// Iterate over `(x, y, pixel)` in row-major order.
    pub fn enumerate_pixels(&self) -> impl Iterator<Item = (u32, u32, Rgb)> + '_ {
        let w = self.width;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, &p)| ((i as u32) % w, (i as u32) / w, p))
    }

    /// Write the frame as binary PPM (P6) — the zero-dependency image
    /// format every viewer opens. Used to export representative frames and
    /// storyboards for visual inspection.
    pub fn write_ppm(&self, out: &mut impl std::io::Write) -> std::io::Result<()> {
        writeln!(out, "P6\n{} {}\n255", self.width, self.height)?;
        let mut bytes = Vec::with_capacity(self.data.len() * 3);
        for p in &self.data {
            bytes.extend_from_slice(&p.0);
        }
        out.write_all(&bytes)
    }

    /// Parse a binary PPM (P6) previously produced by [`FrameBuf::write_ppm`].
    /// Supports exactly that writer's layout (single-whitespace-separated
    /// header, maxval 255); returns `None` on anything else.
    pub fn read_ppm(input: &[u8]) -> Option<FrameBuf> {
        let mut parts = input.splitn(4, |&b| b == b'\n');
        if parts.next()? != b"P6" {
            return None;
        }
        let dims = std::str::from_utf8(parts.next()?).ok()?;
        let (w, h) = dims.split_once(' ')?;
        let (w, h): (u32, u32) = (w.parse().ok()?, h.parse().ok()?);
        if parts.next()? != b"255" {
            return None;
        }
        let raw = parts.next()?;
        let expected = (w as usize) * (h as usize) * 3;
        if raw.len() != expected {
            return None;
        }
        let data = raw
            .chunks_exact(3)
            .map(|c| Rgb([c[0], c[1], c[2]]))
            .collect();
        FrameBuf::from_pixels(w, h, data).ok()
    }

    /// Mean absolute per-channel difference against another frame of the same
    /// dimensions, averaged over all pixels. Used by the pixelwise baseline
    /// detector and by tests.
    pub fn mean_abs_diff(&self, other: &FrameBuf) -> f64 {
        assert_eq!(self.dims(), other.dims(), "frames must share dimensions");
        if self.data.is_empty() {
            return 0.0;
        }
        let total: u64 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| u64::from(a.l1_dist(*b)))
            .sum();
        total as f64 / (self.data.len() as f64 * 3.0)
    }
}

/// A video held fully in memory: a sequence of equally-sized frames.
///
/// The analysis pipeline streams over frames, but the in-memory form is the
/// convenient unit of data entry ("video clips are convenient units for data
/// entry", §1).
#[derive(Debug, Clone, PartialEq)]
pub struct Video {
    frames: Vec<FrameBuf>,
    fps: f64,
}

impl Video {
    /// Paper's analysis frame rate: clips were subsampled to 3 frames/second.
    pub const PAPER_FPS: f64 = 3.0;

    /// Build a video from frames, validating dimension consistency.
    pub fn new(frames: Vec<FrameBuf>, fps: f64) -> Result<Self> {
        if frames.is_empty() {
            return Err(CoreError::EmptyVideo);
        }
        let first = frames[0].dims();
        for (i, f) in frames.iter().enumerate().skip(1) {
            if f.dims() != first {
                return Err(CoreError::InconsistentDimensions {
                    first,
                    other: f.dims(),
                    frame: i,
                });
            }
        }
        Ok(Video { frames, fps })
    }

    /// The frames.
    #[inline]
    pub fn frames(&self) -> &[FrameBuf] {
        &self.frames
    }

    /// Number of frames (`f` in the paper's complexity analysis).
    #[inline]
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the video has zero frames (never true for a constructed video).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Frames per second.
    #[inline]
    pub fn fps(&self) -> f64 {
        self.fps
    }

    /// Duration in seconds.
    #[inline]
    pub fn duration_secs(&self) -> f64 {
        self.frames.len() as f64 / self.fps
    }

    /// Frame dimensions `(width, height)`.
    #[inline]
    pub fn dims(&self) -> (u32, u32) {
        self.frames[0].dims()
    }

    /// Consume into the frame vector.
    pub fn into_frames(self) -> Vec<FrameBuf> {
        self.frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_frame_has_uniform_pixels() {
        let f = FrameBuf::filled(8, 4, Rgb::new(1, 2, 3));
        assert_eq!(f.len(), 32);
        assert!(f.pixels().iter().all(|&p| p == Rgb::new(1, 2, 3)));
    }

    #[test]
    fn from_pixels_validates_length() {
        let err = FrameBuf::from_pixels(4, 4, vec![Rgb::BLACK; 15]).unwrap_err();
        assert_eq!(
            err,
            CoreError::FrameDataMismatch {
                expected: 16,
                actual: 15
            }
        );
        assert!(FrameBuf::from_pixels(4, 4, vec![Rgb::BLACK; 16]).is_ok());
    }

    #[test]
    fn from_fn_row_major_addressing() {
        let f = FrameBuf::from_fn(3, 2, |x, y| Rgb::new(x as u8, y as u8, 0));
        assert_eq!(f.get(0, 0), Rgb::new(0, 0, 0));
        assert_eq!(f.get(2, 0), Rgb::new(2, 0, 0));
        assert_eq!(f.get(1, 1), Rgb::new(1, 1, 0));
        assert_eq!(
            f.row(1),
            &[Rgb::new(0, 1, 0), Rgb::new(1, 1, 0), Rgb::new(2, 1, 0)]
        );
    }

    #[test]
    fn get_clamped_clamps_to_border() {
        let f = FrameBuf::from_fn(2, 2, |x, y| Rgb::new(x as u8, y as u8, 9));
        assert_eq!(f.get_clamped(-5, -5), f.get(0, 0));
        assert_eq!(f.get_clamped(10, 10), f.get(1, 1));
        assert_eq!(f.get_clamped(1, -1), f.get(1, 0));
    }

    #[test]
    fn set_then_get_roundtrip() {
        let mut f = FrameBuf::black(4, 4);
        f.set(3, 2, Rgb::WHITE);
        assert_eq!(f.get(3, 2), Rgb::WHITE);
        assert_eq!(f.get(2, 3), Rgb::BLACK);
    }

    #[test]
    fn enumerate_pixels_visits_all_in_order() {
        let f = FrameBuf::from_fn(3, 2, |x, y| Rgb::new(x as u8, y as u8, 0));
        let coords: Vec<(u32, u32)> = f.enumerate_pixels().map(|(x, y, _)| (x, y)).collect();
        assert_eq!(coords, vec![(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1)]);
        for (x, y, p) in f.enumerate_pixels() {
            assert_eq!(p, f.get(x, y));
        }
    }

    #[test]
    fn mean_abs_diff_of_identical_frames_is_zero() {
        let f = FrameBuf::from_fn(8, 8, |x, y| Rgb::new((x * y) as u8, x as u8, y as u8));
        assert_eq!(f.mean_abs_diff(&f), 0.0);
    }

    #[test]
    fn mean_abs_diff_uniform_shift() {
        let a = FrameBuf::filled(4, 4, Rgb::gray(100));
        let b = FrameBuf::filled(4, 4, Rgb::gray(110));
        assert!((a.mean_abs_diff(&b) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn ppm_roundtrip() {
        let f = FrameBuf::from_fn(7, 5, |x, y| Rgb::new(x as u8 * 30, y as u8 * 40, 200));
        let mut bytes = Vec::new();
        f.write_ppm(&mut bytes).unwrap();
        assert!(bytes.starts_with(b"P6\n7 5\n255\n"));
        assert_eq!(bytes.len(), 11 + 7 * 5 * 3);
        let back = FrameBuf::read_ppm(&bytes).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn ppm_rejects_garbage() {
        assert!(FrameBuf::read_ppm(b"").is_none());
        assert!(FrameBuf::read_ppm(b"P5\n2 2\n255\nxxxx").is_none());
        assert!(FrameBuf::read_ppm(b"P6\n2 2\n255\nshort").is_none());
        assert!(FrameBuf::read_ppm(b"P6\nnope\n255\n").is_none());
    }

    #[test]
    fn video_rejects_empty() {
        assert_eq!(Video::new(vec![], 3.0).unwrap_err(), CoreError::EmptyVideo);
    }

    #[test]
    fn video_rejects_mixed_dimensions() {
        let frames = vec![FrameBuf::black(8, 8), FrameBuf::black(8, 9)];
        let err = Video::new(frames, 3.0).unwrap_err();
        assert!(matches!(
            err,
            CoreError::InconsistentDimensions { frame: 1, .. }
        ));
    }

    #[test]
    fn rgb24_roundtrip_is_exact() {
        let frame = FrameBuf::from_fn(5, 4, |x, y| Rgb([x as u8 * 7, y as u8 * 11, 250]));
        let bytes = frame.to_rgb24();
        assert_eq!(bytes.len(), 5 * 4 * 3);
        assert_eq!(FrameBuf::from_rgb24(5, 4, &bytes).unwrap(), frame);
        assert!(matches!(
            FrameBuf::from_rgb24(5, 4, &bytes[..bytes.len() - 1]),
            Err(CoreError::FrameDataMismatch { .. })
        ));
    }

    #[test]
    fn video_duration() {
        let frames = vec![FrameBuf::black(8, 8); 9];
        let v = Video::new(frames, 3.0).unwrap();
        assert_eq!(v.len(), 9);
        assert!((v.duration_secs() - 3.0).abs() < 1e-12);
        assert_eq!(v.dims(), (8, 8));
    }
}
