//! The three-stage camera-tracking shot-boundary detector (§2.1, Figure 4).
//!
//! For every pair of consecutive frames the detector runs a cascade:
//!
//! 1. **Sign test** — if the two frames' `Sign^BA` pixels are nearly
//!    identical, the frames are in the same shot. The cheapest possible
//!    test (one pixel), it "quickly eliminates the easy cases".
//! 2. **Signature quick test** — if the aligned signatures' mean difference
//!    is small, same shot. Still cheap (one pass over ~253 pixels).
//! 3. **Background tracking** — shift the two signatures toward each other
//!    one pixel at a time; the running maximum of the longest run of
//!    matching overlapping pixels measures how much background the frames
//!    share. Same shot iff the normalized score clears a threshold.
//!
//! The detector also gathers per-stage statistics (used to reproduce the
//! Figure 4 cascade behaviour) and exposes every threshold through
//! [`SbdConfig`] — three thresholds in total, versus "at least three" for
//! histogram methods and "at least six" for edge-change-ratio methods \[2\].

use crate::error::Result;
use crate::features::{extract_features, FrameFeatures};
use crate::frame::Video;
use crate::shot::Shot;
use serde::{Deserialize, Serialize};

/// Tunable thresholds of the cascade.
///
/// The defaults were calibrated on the synthetic corpus so that the paper's
/// headline behaviour holds (recall ≈ 0.9, precision ≈ 0.85 on the Table 5
/// workload); the paper itself only says "a certain threshold" for stage 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SbdConfig {
    /// Stage 1: same shot if `Sign^BA` max-channel diff ≤ this (0–255).
    pub sign_same_max_diff: u8,
    /// Stage 2: same shot if aligned-signature mean abs diff ≤ this.
    pub signature_same_max_diff: f64,
    /// Stage 3: per-pixel match tolerance while tracking (0–255).
    pub track_tolerance: u8,
    /// Stage 3: same shot if `best_run / signature_len` ≥ this (0–1).
    pub track_min_score: f64,
    /// Stage 3: search shifts up to this fraction of the signature length
    /// (1.0 = exhaustive, as in the paper; smaller bounds the work for
    /// high-rate video where inter-frame motion is small).
    pub max_shift_fraction: f64,
    /// Stage 3: stop the shift search as soon as a run clearing the score
    /// threshold is found (§6's segmentation speed-up; decisions are
    /// identical to the exhaustive search, see
    /// `signature::tests::prop_track_until_decision_equivalent`).
    pub early_exit: bool,
}

impl Default for SbdConfig {
    fn default() -> Self {
        SbdConfig {
            sign_same_max_diff: 3,
            signature_same_max_diff: 6.0,
            track_tolerance: 14,
            track_min_score: 0.45,
            max_shift_fraction: 1.0,
            early_exit: true,
        }
    }
}

/// Which cascade stage decided a frame pair, and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StageDecision {
    /// Stage 1 sign test accepted the pair as same-shot.
    SameBySign,
    /// Stage 2 signature quick test accepted the pair as same-shot.
    SameBySignature,
    /// Stage 3 tracking accepted the pair as same-shot.
    SameByTracking,
    /// Stage 3 tracking declared a shot boundary.
    Boundary,
}

/// Aggregate statistics over one video's detection run (Figure 4's cascade
/// in numbers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SbdStats {
    /// Total consecutive-frame pairs examined.
    pub pairs: usize,
    /// Pairs resolved by the stage-1 sign test.
    pub stage1_same: usize,
    /// Pairs resolved by the stage-2 signature quick test.
    pub stage2_same: usize,
    /// Pairs resolved same-shot by stage-3 tracking.
    pub stage3_same: usize,
    /// Pairs declared boundaries (always by stage 3).
    pub boundaries: usize,
}

impl SbdStats {
    /// Fraction of pairs that never reached the expensive stage 3.
    pub fn quick_elimination_rate(&self) -> f64 {
        if self.pairs == 0 {
            return 0.0;
        }
        (self.stage1_same + self.stage2_same) as f64 / self.pairs as f64
    }
}

/// Full result of shot boundary detection over a video.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Segmentation {
    /// Detected shots, in temporal order, covering every frame exactly once.
    pub shots: Vec<Shot>,
    /// Frame indices at which a new shot starts (excluding frame 0).
    pub boundaries: Vec<usize>,
    /// Per-pair decisions (index `i` decides the pair `(i, i+1)`).
    pub decisions: Vec<StageDecision>,
    /// Cascade statistics.
    pub stats: SbdStats,
}

impl Segmentation {
    /// Post-filter: merge shots shorter than `min_frames` into their
    /// successor (the last shot merges backward). Gradual transitions
    /// fragment into micro-shots — a dissolve's blended frames can each
    /// disagree with both neighbors — and this filter absorbs those
    /// fragments, trading boundary-position precision for far fewer
    /// spurious shots. `decisions` and `stats` keep describing the raw
    /// cascade pass.
    pub fn merge_short_shots(&self, min_frames: usize) -> Segmentation {
        if min_frames <= 1 || self.shots.len() <= 1 {
            return self.clone();
        }
        // A run of consecutive fragments folds into the next full-length
        // shot (a dissolve belongs with the shot it leads into); a trailing
        // run folds backward.
        let mut merged: Vec<(usize, usize)> = Vec::with_capacity(self.shots.len());
        let mut carry_start: Option<usize> = None;
        for shot in &self.shots {
            if shot.len() < min_frames {
                carry_start.get_or_insert(shot.start);
            } else {
                let start = carry_start.take().unwrap_or(shot.start);
                merged.push((start, shot.end));
            }
        }
        if let Some(cs) = carry_start {
            let last_end = self.shots.last().expect("non-empty").end;
            match merged.last_mut() {
                Some(last) => last.1 = last_end,
                None => merged.push((cs, last_end)),
            }
        }
        let shots: Vec<Shot> = merged
            .iter()
            .enumerate()
            .map(|(id, &(start, end))| Shot { id, start, end })
            .collect();
        let boundaries = shots.iter().skip(1).map(|s| s.start).collect();
        Segmentation {
            shots,
            boundaries,
            decisions: self.decisions.clone(),
            stats: self.stats,
        }
    }
}

/// The camera-tracking shot boundary detector.
#[derive(Debug, Clone, Default)]
pub struct CameraTrackingDetector {
    config: SbdConfig,
}

impl CameraTrackingDetector {
    /// Detector with the default thresholds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Detector with explicit thresholds.
    pub fn with_config(config: SbdConfig) -> Self {
        CameraTrackingDetector { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SbdConfig {
        &self.config
    }

    /// Decide whether the pair of frames with features `(a, b)` belong to
    /// the same shot.
    pub fn decide_pair(&self, a: &FrameFeatures, b: &FrameFeatures) -> StageDecision {
        let cfg = &self.config;
        // Stage 1: single-pixel sign comparison.
        if a.sign_ba.max_channel_diff(b.sign_ba) <= cfg.sign_same_max_diff {
            return StageDecision::SameBySign;
        }
        // Stage 2: aligned signature comparison.
        if a.signature_ba.quick_diff(&b.signature_ba) <= cfg.signature_same_max_diff {
            return StageDecision::SameBySignature;
        }
        // Stage 3: background tracking.
        let n = a.signature_ba.len();
        let max_shift = ((n as f64) * cfg.max_shift_fraction).round() as usize;
        let track = if cfg.early_exit {
            let target = (cfg.track_min_score * n as f64).ceil() as usize;
            a.signature_ba
                .track_until(&b.signature_ba, cfg.track_tolerance, max_shift, target)
        } else {
            a.signature_ba
                .track(&b.signature_ba, cfg.track_tolerance, max_shift)
        };
        if track.score() >= cfg.track_min_score {
            StageDecision::SameByTracking
        } else {
            StageDecision::Boundary
        }
    }

    /// Segment a feature sequence into shots.
    ///
    /// Delegates to the pipeline's cascade bookkeeping
    /// ([`crate::pipeline::segment_features`]) — the decision loop lives in
    /// one place for batch, streaming, and slice-level callers alike.
    pub fn segment_features(&self, features: &[FrameFeatures]) -> Segmentation {
        crate::pipeline::segment_features(self, features)
    }

    /// Extract features and segment a video in one call.
    pub fn segment_video(&self, video: &Video) -> Result<(Vec<FrameFeatures>, Segmentation)> {
        let features = extract_features(video)?;
        let seg = self.segment_features(&features);
        Ok((features, seg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameBuf;
    use crate::pixel::Rgb;

    /// Features for a synthetic frame whose whole content is one texture
    /// indexed by `world` and shifted by `dx` (camera pan).
    fn textured_frame(world: u64, dx: i64) -> FrameBuf {
        FrameBuf::from_fn(80, 60, |x, y| {
            let xx = i64::from(x) + dx;
            let yy = i64::from(y);
            let h = (xx.wrapping_mul(31).wrapping_add(yy.wrapping_mul(17)) ^ (world as i64 * 7919))
                .unsigned_abs();
            Rgb::new(
                (h % 251) as u8,
                ((h / 251) % 241) as u8,
                ((h / 1024) % 239) as u8,
            )
        })
    }

    fn features_of(frames: &[FrameBuf]) -> Vec<FrameFeatures> {
        let v = Video::new(frames.to_vec(), 3.0).unwrap();
        extract_features(&v).unwrap()
    }

    #[test]
    fn static_video_is_one_shot() {
        let frames = vec![FrameBuf::filled(80, 60, Rgb::gray(120)); 10];
        let seg = CameraTrackingDetector::new().segment_features(&features_of(&frames));
        assert_eq!(seg.shots.len(), 1);
        assert_eq!(
            seg.shots[0],
            Shot {
                id: 0,
                start: 0,
                end: 9
            }
        );
        assert!(seg.boundaries.is_empty());
        assert_eq!(seg.stats.stage1_same, 9);
        assert!((seg.stats.quick_elimination_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hard_cut_detected_between_different_worlds() {
        let mut frames = Vec::new();
        for _ in 0..5 {
            frames.push(textured_frame(1, 0));
        }
        for _ in 0..5 {
            frames.push(textured_frame(2, 0));
        }
        let seg = CameraTrackingDetector::new().segment_features(&features_of(&frames));
        assert_eq!(seg.boundaries, vec![5]);
        assert_eq!(seg.shots.len(), 2);
        assert_eq!(seg.shots[0].end, 4);
        assert_eq!(seg.shots[1].start, 5);
    }

    /// A smooth world with a sustained luminance gradient plus texture
    /// (real backgrounds are smooth at the signature's sampling scale;
    /// white noise is the known worst case for any shift-matching tracker).
    /// The gradient makes the frame's mean color move under a pan, so the
    /// pan genuinely fails the stage-1/2 quick tests and exercises the
    /// tracker.
    fn smooth_pan_frame(dx: i64) -> FrameBuf {
        FrameBuf::from_fn(160, 120, move |x, y| {
            let xx = (i64::from(x) + dx) as f64;
            let v = 30.0 + 0.7 * xx + 10.0 * (xx / 13.0).sin() + 6.0 * (f64::from(y) / 40.0).sin();
            let v = v.clamp(0.0, 255.0) as u8;
            Rgb::new(v, (u16::from(v) * 3 / 4) as u8, 255 - v)
        })
    }

    #[test]
    fn camera_pan_does_not_split_shot() {
        // The headline claim: a pan survives because tracking finds the
        // shifted background. (A pure horizontal pan can only ever shift-
        // match the top-bar section of the strip, c/(c+2h) ≈ 43% of the
        // signature, so very fast pans whose in-place matching also fails
        // sit at the technique's geometric ceiling; 9 px/frame at 3 fps
        // stays inside it.)
        let frames: Vec<FrameBuf> = (0..8).map(|i| smooth_pan_frame(i * 9)).collect();
        let seg = CameraTrackingDetector::new().segment_features(&features_of(&frames));
        assert!(
            seg.boundaries.is_empty(),
            "pan produced spurious boundaries at {:?} (decisions {:?})",
            seg.boundaries,
            seg.decisions
        );
        // The pan must exercise the tracker: a shifted texture fails the
        // stage-1 test for at least some pairs.
        assert!(
            seg.stats.stage3_same > 0,
            "expected the pan to reach stage 3: {:?}",
            seg.stats
        );
    }

    #[test]
    fn shots_partition_frames() {
        let mut frames = Vec::new();
        for world in 0..4u64 {
            for i in 0..6 {
                frames.push(textured_frame(world * 100 + 5, i));
            }
        }
        let seg = CameraTrackingDetector::new().segment_features(&features_of(&frames));
        // Shots tile the video: start at 0, end at last, contiguous.
        assert_eq!(seg.shots.first().unwrap().start, 0);
        assert_eq!(seg.shots.last().unwrap().end, frames.len() - 1);
        for w in seg.shots.windows(2) {
            assert_eq!(w[1].start, w[0].end + 1);
        }
        let total: usize = seg.shots.iter().map(Shot::len).sum();
        assert_eq!(total, frames.len());
        // Ids are sequential.
        for (i, s) in seg.shots.iter().enumerate() {
            assert_eq!(s.id, i);
        }
    }

    #[test]
    fn empty_features_empty_segmentation() {
        let seg = CameraTrackingDetector::new().segment_features(&[]);
        assert!(seg.shots.is_empty());
        assert!(seg.boundaries.is_empty());
        assert_eq!(seg.stats.pairs, 0);
    }

    #[test]
    fn single_frame_is_one_shot() {
        let frames = vec![FrameBuf::filled(80, 60, Rgb::gray(10))];
        let seg = CameraTrackingDetector::new().segment_features(&features_of(&frames));
        assert_eq!(
            seg.shots,
            vec![Shot {
                id: 0,
                start: 0,
                end: 0
            }]
        );
    }

    #[test]
    fn thresholds_control_sensitivity() {
        // A luminance flicker of 10 gray levels fails stages 1 and 2 but is
        // absorbed by stage-3 tracking under the default config; a
        // pathologically strict config declares boundaries everywhere.
        let frames: Vec<FrameBuf> = (0..6)
            .map(|i| FrameBuf::filled(80, 60, Rgb::gray(100 + (i % 2) as u8 * 10)))
            .collect();
        let feats = features_of(&frames);
        let lax = CameraTrackingDetector::new().segment_features(&feats);
        assert!(lax.boundaries.is_empty());
        assert!(
            lax.stats.stage3_same > 0,
            "flicker must reach stage 3: {:?}",
            lax.stats
        );
        let strict = CameraTrackingDetector::with_config(SbdConfig {
            sign_same_max_diff: 0,
            signature_same_max_diff: 0.0,
            track_tolerance: 0,
            track_min_score: 1.1, // unreachable
            max_shift_fraction: 1.0,
            early_exit: false,
        })
        .segment_features(&feats);
        assert_eq!(strict.boundaries.len(), 5);
    }

    fn seg_from_ranges(ranges: &[(usize, usize)]) -> Segmentation {
        let shots: Vec<Shot> = ranges
            .iter()
            .enumerate()
            .map(|(id, &(start, end))| Shot { id, start, end })
            .collect();
        let boundaries = shots.iter().skip(1).map(|s| s.start).collect();
        Segmentation {
            shots,
            boundaries,
            decisions: Vec::new(),
            stats: SbdStats::default(),
        }
    }

    #[test]
    fn merge_short_shots_absorbs_fragments_forward() {
        // A dissolve fragmented into three 1-frame shots between two real
        // shots: the fragments fold into the following real shot.
        let seg = seg_from_ranges(&[(0, 9), (10, 10), (11, 11), (12, 12), (13, 25)]);
        let merged = seg.merge_short_shots(3);
        assert_eq!(
            merged
                .shots
                .iter()
                .map(|s| (s.start, s.end))
                .collect::<Vec<_>>(),
            vec![(0, 9), (10, 25)]
        );
        assert_eq!(merged.boundaries, vec![10]);
        // Ids renumbered.
        assert_eq!(merged.shots[1].id, 1);
    }

    #[test]
    fn merge_short_shots_trailing_fragment_merges_backward() {
        let seg = seg_from_ranges(&[(0, 9), (10, 19), (20, 20)]);
        let merged = seg.merge_short_shots(2);
        assert_eq!(
            merged
                .shots
                .iter()
                .map(|s| (s.start, s.end))
                .collect::<Vec<_>>(),
            vec![(0, 9), (10, 20)]
        );
    }

    #[test]
    fn merge_short_shots_noop_cases() {
        let seg = seg_from_ranges(&[(0, 9), (10, 19)]);
        assert_eq!(seg.merge_short_shots(1), seg);
        assert_eq!(seg.merge_short_shots(5), seg);
        let single = seg_from_ranges(&[(0, 0)]);
        assert_eq!(single.merge_short_shots(10), single);
    }

    #[test]
    fn merge_short_shots_everything_short_collapses_to_one() {
        let seg = seg_from_ranges(&[(0, 0), (1, 1), (2, 2)]);
        let merged = seg.merge_short_shots(4);
        assert_eq!(merged.shots.len(), 1);
        assert_eq!((merged.shots[0].start, merged.shots[0].end), (0, 2));
        assert!(merged.boundaries.is_empty());
    }

    #[test]
    fn merge_preserves_frame_coverage() {
        let seg = seg_from_ranges(&[(0, 2), (3, 3), (4, 10), (11, 11), (12, 12), (13, 30)]);
        for min in 1..6 {
            let merged = seg.merge_short_shots(min);
            assert_eq!(merged.shots.first().unwrap().start, 0);
            assert_eq!(merged.shots.last().unwrap().end, 30);
            for w in merged.shots.windows(2) {
                assert_eq!(w[1].start, w[0].end + 1, "contiguous at min={min}");
            }
        }
    }

    #[test]
    fn decisions_align_with_boundaries() {
        let mut frames = Vec::new();
        for _ in 0..3 {
            frames.push(textured_frame(7, 0));
        }
        for _ in 0..3 {
            frames.push(textured_frame(8, 0));
        }
        let seg = CameraTrackingDetector::new().segment_features(&features_of(&frames));
        for (i, d) in seg.decisions.iter().enumerate() {
            assert_eq!(
                *d == StageDecision::Boundary,
                seg.boundaries.contains(&(i + 1)),
                "decision {i} and boundary list disagree"
            );
        }
        let n_same = seg
            .decisions
            .iter()
            .filter(|d| **d != StageDecision::Boundary)
            .count();
        assert_eq!(
            seg.stats.stage1_same + seg.stats.stage2_same + seg.stats.stage3_same,
            n_same
        );
    }
}
