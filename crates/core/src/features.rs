//! Per-frame feature extraction: `Sign^BA`, `Sign^OA`, and the background
//! signature (§2.1–§2.2).
//!
//! For every frame `i` the extractor computes:
//!
//! * `signature_ba` — the one-row pyramid reduction of the frame's TBA;
//! * `sign_ba` (`Sign_i^BA`) — the single-pixel reduction of the TBA, used
//!   by the stage-1 quick test, by RELATIONSHIP (Eq. 2), and by `Var^BA`;
//! * `sign_oa` (`Sign_i^OA`) — the single-pixel reduction of the FOA, used
//!   by `Var^OA`.

use crate::error::Result;
use crate::frame::{FrameBuf, Video};
use crate::geometry::{AreaLayout, PixelGrid};
use crate::pixel::Rgb;
use crate::pyramid::{reduce_grid_to_signature_into, reduce_line_to_sign_with, ReduceScratch};
use crate::signature::Signature;
use serde::{Deserialize, Serialize};

/// Reusable working memory for per-frame feature extraction.
///
/// Extraction needs four temporaries per frame — the TBA and FOA pixel
/// grids, the intermediate pyramid levels, and the FOA's throwaway
/// signature. A `ScratchBuffers` owns all of them and is threaded through
/// [`FeatureExtractor::extract_with`], so after the first frame (warm-up)
/// the only per-frame allocation left is the returned [`FrameFeatures`]'s
/// own `Signature` — the pyramid reductions themselves are allocation-free
/// (asserted via [`crate::pyramid::reduction_allocs`]).
///
/// The buffers grow to the largest frame layout ever seen and carry no
/// frame content between uses, so one scratch may be reused across clips
/// of different dimensions. Not shareable across threads: each parallel
/// extraction worker owns its own.
#[derive(Debug, Clone, Default)]
pub struct ScratchBuffers {
    tba: PixelGrid,
    foa: PixelGrid,
    reduce: ReduceScratch,
    sig_oa: Vec<Rgb>,
}

/// The features extracted from one frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameFeatures {
    /// `Sign_i^BA`: the background area reduced to one pixel.
    pub sign_ba: Rgb,
    /// `Sign_i^OA`: the object area reduced to one pixel.
    pub sign_oa: Rgb,
    /// The TBA's one-row signature (kept for the SBD tracker; dropped from
    /// persistent storage once shots are formed).
    pub signature_ba: Signature,
}

/// Extracts [`FrameFeatures`] for frames of one fixed size.
///
/// Construct once per video; the [`AreaLayout`] (and hence all pyramid
/// shapes) is fixed by the frame dimensions.
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    layout: AreaLayout,
}

impl FeatureExtractor {
    /// Create an extractor for `width × height` frames.
    pub fn new(width: u32, height: u32) -> Result<Self> {
        Ok(FeatureExtractor {
            layout: AreaLayout::for_frame(width, height)?,
        })
    }

    /// The geometry in use.
    pub fn layout(&self) -> &AreaLayout {
        &self.layout
    }

    /// Extract features for a single frame.
    ///
    /// Allocates fresh working memory per call; hot paths keep a
    /// [`ScratchBuffers`] and use [`FeatureExtractor::extract_with`].
    ///
    /// # Panics
    /// Debug-asserts that the frame matches the extractor's dimensions; the
    /// video-level APIs validate this up front.
    pub fn extract(&self, frame: &FrameBuf) -> Result<FrameFeatures> {
        self.extract_with(frame, &mut ScratchBuffers::default())
    }

    /// Extract features for a single frame, reusing `scratch` for every
    /// temporary. Bit-identical to [`FeatureExtractor::extract`]; after
    /// warm-up the pyramid reductions allocate nothing and the only
    /// per-frame allocation is the returned signature.
    pub fn extract_with(
        &self,
        frame: &FrameBuf,
        scratch: &mut ScratchBuffers,
    ) -> Result<FrameFeatures> {
        self.layout.extract_tba_into(frame, &mut scratch.tba);
        // The BA signature outlives the call inside `FrameFeatures`, so it
        // gets its own allocation — sized up front so the reduction never
        // grows it.
        let mut signature = Vec::with_capacity(self.layout.l);
        reduce_grid_to_signature_into(&scratch.tba, &mut scratch.reduce, &mut signature)?;
        let sign_ba = reduce_line_to_sign_with(&signature, &mut scratch.reduce)?;
        self.layout.extract_foa_into(frame, &mut scratch.foa);
        reduce_grid_to_signature_into(&scratch.foa, &mut scratch.reduce, &mut scratch.sig_oa)?;
        let sign_oa = reduce_line_to_sign_with(&scratch.sig_oa, &mut scratch.reduce)?;
        Ok(FrameFeatures {
            sign_ba,
            sign_oa,
            signature_ba: Signature::new(signature),
        })
    }

    /// Extract features for every frame of a video.
    pub fn extract_video(&self, video: &Video) -> Result<Vec<FrameFeatures>> {
        video.frames().iter().map(|f| self.extract(f)).collect()
    }
}

/// Convenience: build the extractor from the video itself and run it.
pub fn extract_features(video: &Video) -> Result<Vec<FrameFeatures>> {
    let (w, h) = video.dims();
    FeatureExtractor::new(w, h)?.extract_video(video)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CoreError;

    fn uniform_video(n: usize, color: Rgb) -> Video {
        Video::new(vec![FrameBuf::filled(80, 60, color); n], 3.0).unwrap()
    }

    #[test]
    fn uniform_frame_signs_equal_color() {
        let ex = FeatureExtractor::new(80, 60).unwrap();
        let f = ex
            .extract(&FrameBuf::filled(80, 60, Rgb::new(9, 90, 200)))
            .unwrap();
        assert_eq!(f.sign_ba, Rgb::new(9, 90, 200));
        assert_eq!(f.sign_oa, Rgb::new(9, 90, 200));
        assert!(f
            .signature_ba
            .pixels()
            .iter()
            .all(|&p| p == Rgb::new(9, 90, 200)));
    }

    #[test]
    fn signature_length_matches_layout() {
        let ex = FeatureExtractor::new(160, 120).unwrap();
        let f = ex.extract(&FrameBuf::black(160, 120)).unwrap();
        assert_eq!(f.signature_ba.len(), ex.layout().l);
        assert_eq!(f.signature_ba.len(), 253);
    }

    #[test]
    fn background_and_object_are_independent() {
        // Change only the FOA: sign_oa must move, sign_ba must not.
        let ex = FeatureExtractor::new(160, 120).unwrap();
        let lay = *ex.layout();
        let (w, h) = (lay.w_raw as u32, lay.h_raw as u32);
        let frame_with_center = |center: Rgb| {
            FrameBuf::from_fn(160, 120, move |x, y| {
                let in_foa = y >= w && x >= w && x < 160 - w && y < w + h;
                if in_foa {
                    center
                } else {
                    Rgb::gray(128)
                }
            })
        };
        let fa = ex.extract(&frame_with_center(Rgb::gray(0))).unwrap();
        let fb = ex.extract(&frame_with_center(Rgb::gray(255))).unwrap();
        assert_eq!(
            fa.sign_ba, fb.sign_ba,
            "background sign must ignore the FOA"
        );
        assert!(
            fa.sign_oa.max_channel_diff(fb.sign_oa) > 200,
            "object sign must follow the FOA"
        );
    }

    #[test]
    fn extract_video_returns_one_feature_per_frame() {
        let v = uniform_video(7, Rgb::gray(10));
        let feats = extract_features(&v).unwrap();
        assert_eq!(feats.len(), 7);
        assert!(feats.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn too_small_video_fails() {
        let v = Video::new(vec![FrameBuf::black(8, 8)], 3.0).unwrap();
        assert!(matches!(
            extract_features(&v),
            Err(CoreError::FrameTooSmall { .. })
        ));
    }

    #[test]
    fn scratch_extraction_matches_fresh_extraction_across_dims() {
        // One scratch cycled through two different layouts (and back) must
        // not leak any state between frames.
        let mut scratch = ScratchBuffers::default();
        for dims in [(80u32, 60u32), (160, 120), (80, 60)] {
            let ex = FeatureExtractor::new(dims.0, dims.1).unwrap();
            for seed in 0..4u8 {
                let frame = FrameBuf::from_fn(dims.0, dims.1, |x, y| {
                    Rgb::gray(((x * 3 + y * 5) as u8).wrapping_add(seed * 37))
                });
                assert_eq!(
                    ex.extract_with(&frame, &mut scratch).unwrap(),
                    ex.extract(&frame).unwrap(),
                    "dims {dims:?} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn deterministic_extraction() {
        let frame = FrameBuf::from_fn(80, 60, |x, y| {
            Rgb::new((x * 3) as u8, (y * 5) as u8, ((x + y) * 2) as u8)
        });
        let ex = FeatureExtractor::new(80, 60).unwrap();
        let a = ex.extract(&frame).unwrap();
        let b = ex.extract(&frame).unwrap();
        assert_eq!(a, b);
    }
}
