//! Per-frame feature extraction: `Sign^BA`, `Sign^OA`, and the background
//! signature (§2.1–§2.2).
//!
//! For every frame `i` the extractor computes:
//!
//! * `signature_ba` — the one-row pyramid reduction of the frame's TBA;
//! * `sign_ba` (`Sign_i^BA`) — the single-pixel reduction of the TBA, used
//!   by the stage-1 quick test, by RELATIONSHIP (Eq. 2), and by `Var^BA`;
//! * `sign_oa` (`Sign_i^OA`) — the single-pixel reduction of the FOA, used
//!   by `Var^OA`.
//!
//! # The fused hot path
//!
//! The textbook formulation crops the frame into a TBA/FOA grid and then
//! reduces that grid — two passes, with the full grid materialized in
//! between. This module fuses them: the crop is a precomputed index-table
//! gather ([`AreaLayout::tba_index_table`]), and grid rows are gathered
//! into a 5-row ring just in time for the first vertical reduction, so
//! each source pixel is read exactly once and only `5 × cols` gathered
//! pixels are ever live. Output row `i` consumes source rows
//! `2i..2i+4`; the ring slot for row `r` is `r % 5`, collision-free
//! because any kernel window spans 5 consecutive rows. The remaining
//! (much smaller) levels collapse via
//! [`crate::kernels::collapse_grid_to_row`] at the extractor's resolved
//! SIMD level. Results are bit-identical to the unfused crop-then-reduce
//! composition at every level — pinned by the proptests below and the
//! scalar-vs-SIMD equivalence suite.

use crate::error::Result;
use crate::frame::{FrameBuf, Video};
use crate::geometry::AreaLayout;
use crate::kernels;
use crate::pixel::{rgb_as_bytes, rgb_as_bytes_mut, Rgb};
use crate::pyramid::{ensure_capacity, reduce_line_to_sign_with, ReduceScratch};
use crate::signature::Signature;
use crate::simd::{ResolvedIsa, SimdLevel};
use crate::sizeset::in_size_set;
use serde::{Deserialize, Serialize};

/// Reusable working memory for per-frame feature extraction.
///
/// Extraction needs a handful of temporaries per frame — the 5-row gather
/// ring, the intermediate pyramid levels, and the FOA's throwaway
/// signature. A `ScratchBuffers` owns all of them and is threaded through
/// [`FeatureExtractor::extract_with`], so after the first frame (warm-up)
/// the only per-frame allocation left is the returned [`FrameFeatures`]'s
/// own `Signature` — the crop gathers and pyramid reductions themselves
/// are allocation-free (asserted via [`crate::pyramid::reduction_allocs`]).
///
/// The buffers grow to the largest frame layout ever seen and carry no
/// frame content between uses, so one scratch may be reused across clips
/// of different dimensions. Not shareable across threads: each parallel
/// extraction worker owns its own.
#[derive(Debug, Clone, Default)]
pub struct ScratchBuffers {
    grids: GridScratch,
    reduce: ReduceScratch,
    sig_oa: Vec<Rgb>,
}

/// Scratch for the fused crop-and-reduce grid pass: the 5-row gather ring
/// plus the two ping-pong level buffers. Kept separate from
/// [`ReduceScratch`] (the *line* pyramid's buffers) so the line
/// reductions' clear/push length games never force the grid pass to
/// re-initialize its full-length buffers.
#[derive(Debug, Clone, Default)]
struct GridScratch {
    ring: [Vec<Rgb>; 5],
    a: Vec<Rgb>,
    b: Vec<Rgb>,
}

/// Grow `buf` to at least `len` initialized pixels, charging the reduction
/// allocation counter only on true heap growth. Never shrinks, so warm
/// slices stay valid across layout changes.
fn grow_pixels(buf: &mut Vec<Rgb>, len: usize) {
    if buf.len() < len {
        ensure_capacity(buf, len);
        buf.resize(len, Rgb::BLACK);
    }
}

/// The features extracted from one frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameFeatures {
    /// `Sign_i^BA`: the background area reduced to one pixel.
    pub sign_ba: Rgb,
    /// `Sign_i^OA`: the object area reduced to one pixel.
    pub sign_oa: Rgb,
    /// The TBA's one-row signature (kept for the SBD tracker; dropped from
    /// persistent storage once shots are formed).
    pub signature_ba: Signature,
}

/// Extracts [`FrameFeatures`] for frames of one fixed size.
///
/// Construct once per video; the [`AreaLayout`] (and hence all pyramid
/// shapes), the crop index tables, and the resolved SIMD level are fixed
/// by the frame dimensions and configuration. Shareable across parallel
/// workers by `&self` (each worker brings its own [`ScratchBuffers`]).
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    layout: AreaLayout,
    isa: ResolvedIsa,
    /// `w × L` nearest-neighbor table: TBA cell → frame pixel index.
    tba_table: Vec<u32>,
    /// `h × b` nearest-neighbor table: FOA cell → frame pixel index.
    foa_table: Vec<u32>,
}

impl FeatureExtractor {
    /// Create an extractor for `width × height` frames, auto-detecting the
    /// SIMD level ([`SimdLevel::Auto`]).
    pub fn new(width: u32, height: u32) -> Result<Self> {
        Self::with_simd(width, height, SimdLevel::Auto)
    }

    /// Create an extractor for `width × height` frames at an explicit
    /// [`SimdLevel`]. Every level extracts bit-identical features; the
    /// knob only changes wall-clock time.
    ///
    /// # Errors
    /// [`crate::CoreError::FrameTooSmall`] for unusable dimensions;
    /// [`crate::CoreError::SimdUnavailable`] if a forced level names an
    /// instruction set this host lacks.
    pub fn with_simd(width: u32, height: u32, simd: SimdLevel) -> Result<Self> {
        Self::with_layout(AreaLayout::for_frame(width, height)?, simd)
    }

    /// Create an extractor for an explicit (possibly non-default)
    /// [`AreaLayout`], e.g. one built with
    /// [`AreaLayout::for_frame_with_fraction`].
    pub fn with_layout(layout: AreaLayout, simd: SimdLevel) -> Result<Self> {
        let isa = simd.try_resolve()?;
        Ok(FeatureExtractor {
            layout,
            isa,
            tba_table: layout.tba_index_table(),
            foa_table: layout.foa_index_table(),
        })
    }

    /// The geometry in use.
    pub fn layout(&self) -> &AreaLayout {
        &self.layout
    }

    /// The instruction set the extraction kernels run with.
    pub fn simd(&self) -> ResolvedIsa {
        self.isa
    }

    /// Extract features for a single frame.
    ///
    /// Allocates fresh working memory per call; hot paths keep a
    /// [`ScratchBuffers`] and use [`FeatureExtractor::extract_with`].
    ///
    /// # Panics
    /// Debug-asserts that the frame matches the extractor's dimensions; the
    /// video-level APIs validate this up front.
    pub fn extract(&self, frame: &FrameBuf) -> Result<FrameFeatures> {
        self.extract_with(frame, &mut ScratchBuffers::default())
    }

    /// Extract features for a single frame, reusing `scratch` for every
    /// temporary. Bit-identical to [`FeatureExtractor::extract`]; after
    /// warm-up the crop gathers and pyramid reductions allocate nothing
    /// and the only per-frame allocation is the returned signature.
    pub fn extract_with(
        &self,
        frame: &FrameBuf,
        scratch: &mut ScratchBuffers,
    ) -> Result<FrameFeatures> {
        debug_assert_eq!(
            frame.dims(),
            (self.layout.frame_width, self.layout.frame_height)
        );
        let pixels = frame.pixels();
        // The BA signature outlives the call inside `FrameFeatures`, so it
        // gets its own allocation — sized up front so the reduction never
        // grows it.
        let mut signature = Vec::with_capacity(self.layout.l);
        fused_crop_signature(
            pixels,
            &self.tba_table,
            self.layout.w,
            self.layout.l,
            self.isa,
            &mut scratch.grids,
            &mut signature,
        )?;
        let sign_ba = reduce_line_to_sign_with(&signature, &mut scratch.reduce)?;
        fused_crop_signature(
            pixels,
            &self.foa_table,
            self.layout.h,
            self.layout.b,
            self.isa,
            &mut scratch.grids,
            &mut scratch.sig_oa,
        )?;
        let sign_oa = reduce_line_to_sign_with(&scratch.sig_oa, &mut scratch.reduce)?;
        Ok(FrameFeatures {
            sign_ba,
            sign_oa,
            signature_ba: Signature::new(signature),
        })
    }

    /// Extract features for every frame of a video.
    pub fn extract_video(&self, video: &Video) -> Result<Vec<FrameFeatures>> {
        video.frames().iter().map(|f| self.extract(f)).collect()
    }
}

/// The fused crop + grid pyramid: gather `rows × cols` grid cells from
/// `pixels` through `table` and collapse them to the one-row signature in
/// `out` (cleared first), without ever materializing the full grid.
///
/// Rows are gathered into the 5-slot ring exactly when the first vertical
/// reduction needs them (output row `i` consumes source rows `2i..2i+4`,
/// so each source row is gathered exactly once), the level-1 grid lands in
/// `grids.a`, and the remaining levels collapse in place. Bit-identical to
/// `extract_*_into` + `reduce_grid_to_signature_into` at every SIMD level.
fn fused_crop_signature(
    pixels: &[Rgb],
    table: &[u32],
    rows: usize,
    cols: usize,
    isa: ResolvedIsa,
    grids: &mut GridScratch,
    out: &mut Vec<Rgb>,
) -> Result<()> {
    debug_assert_eq!(table.len(), rows * cols);
    if !in_size_set(rows) {
        return Err(crate::CoreError::NotInSizeSet { len: rows });
    }
    if !in_size_set(cols) {
        return Err(crate::CoreError::NotInSizeSet { len: cols });
    }
    out.clear();
    ensure_capacity(out, cols);
    if rows == 1 {
        // The grid already is a single line: the signature is the gather.
        out.resize(cols, Rgb::BLACK);
        kernels::gather_pixels(pixels, table, &mut out[..]);
        return Ok(());
    }
    let out_rows = (rows - 3) / 2;
    for slot in grids.ring.iter_mut() {
        grow_pixels(slot, cols);
    }
    grow_pixels(&mut grids.a, out_rows * cols);
    grow_pixels(&mut grids.b, out_rows * cols);
    let mut gathered = 0usize;
    for i in 0..out_rows {
        // Pull in the source rows this window needs (2 new ones after the
        // first window; 5 for it). Slot `r % 5` cannot collide within the
        // 5-consecutive-row window.
        while gathered <= 2 * i + 4 {
            kernels::gather_pixels(
                pixels,
                &table[gathered * cols..(gathered + 1) * cols],
                &mut grids.ring[gathered % 5][..cols],
            );
            gathered += 1;
        }
        let window: [&[u8]; 5] =
            core::array::from_fn(|k| rgb_as_bytes(&grids.ring[(2 * i + k) % 5][..cols]));
        kernels::reduce_rows5(
            isa,
            window,
            rgb_as_bytes_mut(&mut grids.a[i * cols..(i + 1) * cols]),
        );
    }
    kernels::collapse_grid_to_row(&mut grids.a, &mut grids.b, out_rows, cols, isa, out);
    Ok(())
}

/// Convenience: build the extractor from the video itself and run it.
pub fn extract_features(video: &Video) -> Result<Vec<FrameFeatures>> {
    let (w, h) = video.dims();
    FeatureExtractor::new(w, h)?.extract_video(video)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CoreError;
    use crate::pyramid::{reduce_grid_to_signature, reduce_line_to_sign};
    use proptest::prelude::*;

    fn uniform_video(n: usize, color: Rgb) -> Video {
        Video::new(vec![FrameBuf::filled(80, 60, color); n], 3.0).unwrap()
    }

    /// The unfused reference: crop-then-reduce composed from the closure
    /// extractors and the scalar grid pyramid.
    fn composed_reference(layout: &AreaLayout, frame: &FrameBuf) -> FrameFeatures {
        let tba = layout.extract_tba(frame);
        let signature = reduce_grid_to_signature(&tba).unwrap();
        let sign_ba = reduce_line_to_sign(&signature).unwrap();
        let foa = layout.extract_foa(frame);
        let sig_oa = reduce_grid_to_signature(&foa).unwrap();
        let sign_oa = reduce_line_to_sign(&sig_oa).unwrap();
        FrameFeatures {
            sign_ba,
            sign_oa,
            signature_ba: Signature::new(signature),
        }
    }

    #[test]
    fn uniform_frame_signs_equal_color() {
        let ex = FeatureExtractor::new(80, 60).unwrap();
        let f = ex
            .extract(&FrameBuf::filled(80, 60, Rgb::new(9, 90, 200)))
            .unwrap();
        assert_eq!(f.sign_ba, Rgb::new(9, 90, 200));
        assert_eq!(f.sign_oa, Rgb::new(9, 90, 200));
        assert!(f
            .signature_ba
            .pixels()
            .iter()
            .all(|&p| p == Rgb::new(9, 90, 200)));
    }

    #[test]
    fn signature_length_matches_layout() {
        let ex = FeatureExtractor::new(160, 120).unwrap();
        let f = ex.extract(&FrameBuf::black(160, 120)).unwrap();
        assert_eq!(f.signature_ba.len(), ex.layout().l);
        assert_eq!(f.signature_ba.len(), 253);
    }

    #[test]
    fn background_and_object_are_independent() {
        // Change only the FOA: sign_oa must move, sign_ba must not.
        let ex = FeatureExtractor::new(160, 120).unwrap();
        let lay = *ex.layout();
        let (w, h) = (lay.w_raw as u32, lay.h_raw as u32);
        let frame_with_center = |center: Rgb| {
            FrameBuf::from_fn(160, 120, move |x, y| {
                let in_foa = y >= w && x >= w && x < 160 - w && y < w + h;
                if in_foa {
                    center
                } else {
                    Rgb::gray(128)
                }
            })
        };
        let fa = ex.extract(&frame_with_center(Rgb::gray(0))).unwrap();
        let fb = ex.extract(&frame_with_center(Rgb::gray(255))).unwrap();
        assert_eq!(
            fa.sign_ba, fb.sign_ba,
            "background sign must ignore the FOA"
        );
        assert!(
            fa.sign_oa.max_channel_diff(fb.sign_oa) > 200,
            "object sign must follow the FOA"
        );
    }

    #[test]
    fn extract_video_returns_one_feature_per_frame() {
        let v = uniform_video(7, Rgb::gray(10));
        let feats = extract_features(&v).unwrap();
        assert_eq!(feats.len(), 7);
        assert!(feats.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn too_small_video_fails() {
        let v = Video::new(vec![FrameBuf::black(8, 8)], 3.0).unwrap();
        assert!(matches!(
            extract_features(&v),
            Err(CoreError::FrameTooSmall { .. })
        ));
    }

    #[test]
    fn scratch_extraction_matches_fresh_extraction_across_dims() {
        // One scratch cycled through two different layouts (and back) must
        // not leak any state between frames.
        let mut scratch = ScratchBuffers::default();
        for dims in [(80u32, 60u32), (160, 120), (80, 60)] {
            let ex = FeatureExtractor::new(dims.0, dims.1).unwrap();
            for seed in 0..4u8 {
                let frame = FrameBuf::from_fn(dims.0, dims.1, |x, y| {
                    Rgb::gray(((x * 3 + y * 5) as u8).wrapping_add(seed * 37))
                });
                assert_eq!(
                    ex.extract_with(&frame, &mut scratch).unwrap(),
                    ex.extract(&frame).unwrap(),
                    "dims {dims:?} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn deterministic_extraction() {
        let frame = FrameBuf::from_fn(80, 60, |x, y| {
            Rgb::new((x * 3) as u8, (y * 5) as u8, ((x + y) * 2) as u8)
        });
        let ex = FeatureExtractor::new(80, 60).unwrap();
        let a = ex.extract(&frame).unwrap();
        let b = ex.extract(&frame).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fused_matches_composed_at_every_level_on_fixed_dims() {
        // Odd frame dims land the grids on non-lane-multiple byte widths;
        // 160x120 is the paper layout.
        for (w, h) in [(160u32, 120u32), (80, 60), (41, 31), (97, 73)] {
            let frame = FrameBuf::from_fn(w, h, |x, y| {
                Rgb::new(
                    ((x * 3 + y * 17) % 253) as u8,
                    ((x * 11 + y * 5) % 251) as u8,
                    ((x + y * 23) % 241) as u8,
                )
            });
            let layout = AreaLayout::for_frame(w, h).unwrap();
            let expected = composed_reference(&layout, &frame);
            for level in SimdLevel::all_available() {
                let ex = FeatureExtractor::with_simd(w, h, level).unwrap();
                assert_eq!(ex.extract(&frame).unwrap(), expected, "{w}x{h} at {level}");
            }
        }
    }

    #[test]
    fn forced_unavailable_isa_is_an_error() {
        // At least one of these is absent on any given host arch.
        let mut saw_err = false;
        for level in [
            SimdLevel::Forced(crate::SimdIsa::Neon),
            SimdLevel::Forced(crate::SimdIsa::Avx2),
        ] {
            if let Err(e) = FeatureExtractor::with_simd(80, 60, level) {
                assert!(matches!(e, CoreError::SimdUnavailable { .. }));
                saw_err = true;
            }
        }
        // On x86_64 Neon always errors; on aarch64 Avx2 always errors.
        if cfg!(any(target_arch = "x86_64", target_arch = "aarch64")) {
            assert!(saw_err);
        }
    }

    proptest! {
        /// The tentpole invariant: fused crop+reduce equals crop-then-reduce
        /// composed, for random frame dims, crop rectangles (border
        /// fractions), and hence pyramid depths — at every available SIMD
        /// level.
        #[test]
        fn prop_fused_equals_composed(
            width in 20u32..260,
            height in 20u32..260,
            frac_pct in 5u32..45,
            seed in any::<u8>(),
        ) {
            let fraction = frac_pct as f64 / 100.0;
            if let Ok(layout) = AreaLayout::for_frame_with_fraction(width, height, fraction) {
                let frame = FrameBuf::from_fn(width, height, |x, y| {
                    Rgb::new(
                        ((x * 7 + y * 3) as u8).wrapping_add(seed),
                        ((x + y * 13) as u8).wrapping_mul(31),
                        ((x * 5 + y * 11) as u8) ^ seed,
                    )
                });
                let expected = composed_reference(&layout, &frame);
                let mut scratch = ScratchBuffers::default();
                for level in SimdLevel::all_available() {
                    let ex = FeatureExtractor::with_layout(layout, level).unwrap();
                    let got = ex.extract_with(&frame, &mut scratch).unwrap();
                    prop_assert_eq!(&got, &expected, "{}x{} frac {} at {}", width, height, fraction, level);
                }
            }
        }
    }
}
