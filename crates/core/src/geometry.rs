//! Background/object-area geometry (§2 of the paper, Figure 1).
//!
//! Every frame is carved into:
//!
//! * the ⊓-shaped **fixed background area** (FBA): a top bar of height `w`
//!   spanning the full width plus two vertical columns of width `w` running
//!   down the left and right edges — the regions where camera motion shows
//!   up and foreground objects usually do not;
//! * the **fixed object area** (FOA): the central/bottom region between the
//!   columns and below the top bar, where primary objects appear.
//!
//! The FBA's two vertical columns are rotated *outward* (Figure 2) to form
//! the rectangular **transformed background area** (TBA) of height `w` and
//! length `L = c + 2h`, so background comparison becomes a one-dimensional
//! shift-and-match over the TBA's pyramid signature.
//!
//! Raw dimensions are estimated from the frame size (`w' = ⌊c/10⌋`,
//! `b' = c − 2w'`, `h' = r − w'`, `L' = c + 2h'`) and snapped to the
//! Gaussian-pyramid size set (see [`crate::sizeset`]).

use crate::error::{CoreError, Result};
use crate::frame::FrameBuf;
use crate::pixel::Rgb;
use crate::sizeset::snap;
use serde::{Deserialize, Serialize};

/// A small rectangular grid of pixels (rows × cols), the unit the Gaussian
/// pyramid reduces. Produced by TBA/FOA extraction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PixelGrid {
    rows: usize,
    cols: usize,
    data: Vec<Rgb>,
}

impl PixelGrid {
    /// Build from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: Vec<Rgb>) -> Self {
        assert_eq!(data.len(), rows * cols, "grid data length mismatch");
        PixelGrid { rows, cols, data }
    }

    /// Build by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, f: impl FnMut(usize, usize) -> Rgb) -> Self {
        let mut grid = PixelGrid::default();
        grid.fill_from_fn(rows, cols, f);
        grid
    }

    /// Refill this grid in place by evaluating `f(row, col)`, resizing to
    /// `rows × cols`. The backing storage is reused, so a grid cycled
    /// through frames of one layout allocates only on its first fill.
    pub fn fill_from_fn(
        &mut self,
        rows: usize,
        cols: usize,
        mut f: impl FnMut(usize, usize) -> Rgb,
    ) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.reserve(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                self.data.push(f(r, c));
            }
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Pixel at `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> Rgb {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Row-major pixel data.
    #[inline]
    pub fn data(&self) -> &[Rgb] {
        &self.data
    }

    /// One column as an owned vector (pyramid reduction works column-first).
    pub fn column(&self, col: usize) -> Vec<Rgb> {
        (0..self.rows).map(|r| self.get(r, col)).collect()
    }
}

/// The complete area geometry for one frame size.
///
/// Computed once per video (all frames share dimensions) and reused for
/// every frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AreaLayout {
    /// Frame width (`c`).
    pub frame_width: u32,
    /// Frame height (`r`).
    pub frame_height: u32,
    /// Raw FBA bar/column thickness `w' = ⌊c/10⌋`.
    pub w_raw: usize,
    /// Raw FOA width `b' = c − 2w'`.
    pub b_raw: usize,
    /// Raw FOA height / FBA column height `h' = r − w'`.
    pub h_raw: usize,
    /// Raw TBA length `L' = c + 2h'`.
    pub l_raw: usize,
    /// Snapped TBA height `w`.
    pub w: usize,
    /// Snapped FOA width `b`.
    pub b: usize,
    /// Snapped FOA height `h`.
    pub h: usize,
    /// Snapped TBA length `L`.
    pub l: usize,
}

impl AreaLayout {
    /// Compute the layout for a `width × height` frame.
    ///
    /// Mirrors §2.2: `w'` is 10 % of the frame width ("determined
    /// empirically using our video clips"), the other raw dimensions follow,
    /// and all four are snapped to the size set.
    ///
    /// # Errors
    /// [`CoreError::FrameTooSmall`] if any raw dimension would be zero
    /// (frames narrower than 10 px or not taller than `w'`).
    pub fn for_frame(width: u32, height: u32) -> Result<Self> {
        Self::for_frame_with_fraction(width, height, 0.1)
    }

    /// [`AreaLayout::for_frame`] with an explicit border-thickness fraction
    /// instead of the paper's empirical 10 % (`w' = ⌊c·fraction⌋`).
    /// Exposed for the FBA-thickness ablation: thinner borders see less
    /// background (noisier signs), thicker ones encroach on the object
    /// area.
    pub fn for_frame_with_fraction(width: u32, height: u32, fraction: f64) -> Result<Self> {
        assert!(
            fraction > 0.0 && fraction < 0.5,
            "border fraction must be in (0, 0.5)"
        );
        let c = width as usize;
        let r = height as usize;
        let w_raw = (c as f64 * fraction) as usize;
        if w_raw == 0 || r <= w_raw || c <= 2 * w_raw {
            return Err(CoreError::FrameTooSmall { width, height });
        }
        let b_raw = c - 2 * w_raw;
        let h_raw = r - w_raw;
        let l_raw = c + 2 * h_raw;
        Ok(AreaLayout {
            frame_width: width,
            frame_height: height,
            w_raw,
            b_raw,
            h_raw,
            l_raw,
            w: snap(w_raw),
            b: snap(b_raw),
            h: snap(h_raw),
            l: snap(l_raw),
        })
    }

    /// Extract the transformed background area of `frame` as a `w × L` grid.
    ///
    /// The conceptual raw strip is `[left column rotated] [top bar] [right
    /// column rotated]`, of size `w' × L'`; the snapped `w × L` grid samples
    /// it with nearest-neighbor so the pyramid's size-set requirement is met
    /// regardless of the exact frame dimensions. Rotation is *outward*
    /// (Figure 2): the strip is continuous where each column meets the bar.
    pub fn extract_tba(&self, frame: &FrameBuf) -> PixelGrid {
        let mut grid = PixelGrid::default();
        self.extract_tba_into(frame, &mut grid);
        grid
    }

    /// [`AreaLayout::extract_tba`] into a reusable grid (see
    /// [`PixelGrid::fill_from_fn`]): no allocation once the grid has
    /// warmed up to this layout's `w × L`.
    pub fn extract_tba_into(&self, frame: &FrameBuf, grid: &mut PixelGrid) {
        debug_assert_eq!(frame.dims(), (self.frame_width, self.frame_height));
        let (w_raw, h_raw, l_raw) = (self.w_raw, self.h_raw, self.l_raw);
        let c = self.frame_width as i64;
        let r = self.frame_height as i64;
        grid.fill_from_fn(self.w, self.l, |t, u| {
            // Nearest-neighbor back-projection into the raw strip.
            let rt = ((t as f64 + 0.5) * w_raw as f64 / self.w as f64) as i64;
            let ru = ((u as f64 + 0.5) * l_raw as f64 / self.l as f64) as i64;
            let rt = rt.clamp(0, w_raw as i64 - 1);
            let ru = ru.clamp(0, l_raw as i64 - 1);
            // Map raw strip coordinate (rt, ru) to a frame pixel.
            if ru < h_raw as i64 {
                // Left column, rotated outward: strip column 0 is the bottom
                // of the frame's left column; the junction (ru = h'-1)
                // touches the top bar.
                frame.get_clamped(rt, r - 1 - ru)
            } else if ru < h_raw as i64 + c {
                // Top bar.
                frame.get_clamped(ru - h_raw as i64, rt)
            } else {
                // Right column, rotated outward: the junction (ru = h'+c)
                // touches the top bar; the far end is the bottom.
                let v = ru - h_raw as i64 - c;
                frame.get_clamped(c - 1 - rt, w_raw as i64 + v)
            }
        })
    }

    /// Precompute the TBA crop as an index table: entry `t * L + u` is the
    /// frame-pixel index (`y * frame_width + x`) that TBA grid cell
    /// `(t, u)` samples.
    ///
    /// The table evaluates the *same* nearest-neighbor back-projection as
    /// [`AreaLayout::extract_tba_into`] — same `f64` expressions, same
    /// clamping — so gathering through it is bit-identical to the closure
    /// path (pinned by tests). Crop geometry is a function of the layout
    /// alone, so the `f64` math runs once per layout here instead of once
    /// per pixel per frame; the per-frame crop becomes a pure gather
    /// ([`crate::kernels::gather_pixels`]).
    pub fn tba_index_table(&self) -> Vec<u32> {
        let (w_raw, h_raw, l_raw) = (self.w_raw, self.h_raw, self.l_raw);
        let c = i64::from(self.frame_width);
        let r = i64::from(self.frame_height);
        let mut table = Vec::with_capacity(self.w * self.l);
        for t in 0..self.w {
            let rt = ((t as f64 + 0.5) * w_raw as f64 / self.w as f64) as i64;
            let rt = rt.clamp(0, w_raw as i64 - 1);
            for u in 0..self.l {
                let ru = ((u as f64 + 0.5) * l_raw as f64 / self.l as f64) as i64;
                let ru = ru.clamp(0, l_raw as i64 - 1);
                let (x, y) = if ru < h_raw as i64 {
                    (rt, r - 1 - ru)
                } else if ru < h_raw as i64 + c {
                    (ru - h_raw as i64, rt)
                } else {
                    let v = ru - h_raw as i64 - c;
                    (c - 1 - rt, w_raw as i64 + v)
                };
                table.push(Self::pixel_index(x, y, c, r));
            }
        }
        table
    }

    /// Precompute the FOA crop as an index table: entry `row * b + col` is
    /// the frame-pixel index FOA grid cell `(row, col)` samples. Same
    /// contract as [`AreaLayout::tba_index_table`], mirroring
    /// [`AreaLayout::extract_foa_into`].
    pub fn foa_index_table(&self) -> Vec<u32> {
        let (w_raw, h_raw, b_raw) = (self.w_raw, self.h_raw, self.b_raw);
        let c = i64::from(self.frame_width);
        let r = i64::from(self.frame_height);
        let mut table = Vec::with_capacity(self.h * self.b);
        for row in 0..self.h {
            let rr = ((row as f64 + 0.5) * h_raw as f64 / self.h as f64) as i64;
            let rr = rr.clamp(0, h_raw as i64 - 1);
            for col in 0..self.b {
                let rc = ((col as f64 + 0.5) * b_raw as f64 / self.b as f64) as i64;
                let rc = rc.clamp(0, b_raw as i64 - 1);
                table.push(Self::pixel_index(
                    w_raw as i64 + rc,
                    w_raw as i64 + rr,
                    c,
                    r,
                ));
            }
        }
        table
    }

    /// Frame coordinate → flat pixel index, with the same border clamp as
    /// `FrameBuf::get_clamped` (a no-op for in-range layouts, kept for
    /// exact behavioral parity with the closure-based extractors).
    #[inline]
    fn pixel_index(x: i64, y: i64, c: i64, r: i64) -> u32 {
        let x = x.clamp(0, c - 1);
        let y = y.clamp(0, r - 1);
        // Frames larger than u32::MAX pixels would overflow the compact
        // table entries; real frames are orders of magnitude smaller.
        debug_assert!(y * c + x <= i64::from(u32::MAX));
        (y * c + x) as u32
    }

    /// Extract the fixed object area of `frame` as an `h × b` grid.
    ///
    /// The raw FOA occupies rows `w'..r` and columns `w'..c−w'` (the central
    /// and bottom region of Figure 1); the snapped grid samples it with
    /// nearest-neighbor.
    pub fn extract_foa(&self, frame: &FrameBuf) -> PixelGrid {
        let mut grid = PixelGrid::default();
        self.extract_foa_into(frame, &mut grid);
        grid
    }

    /// [`AreaLayout::extract_foa`] into a reusable grid: no allocation once
    /// the grid has warmed up to this layout's `h × b`.
    pub fn extract_foa_into(&self, frame: &FrameBuf, grid: &mut PixelGrid) {
        debug_assert_eq!(frame.dims(), (self.frame_width, self.frame_height));
        let (w_raw, h_raw, b_raw) = (self.w_raw, self.h_raw, self.b_raw);
        grid.fill_from_fn(self.h, self.b, |row, col| {
            let rr = ((row as f64 + 0.5) * h_raw as f64 / self.h as f64) as i64;
            let rc = ((col as f64 + 0.5) * b_raw as f64 / self.b as f64) as i64;
            let rr = rr.clamp(0, h_raw as i64 - 1);
            let rc = rc.clamp(0, b_raw as i64 - 1);
            frame.get_clamped(w_raw as i64 + rc, w_raw as i64 + rr)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_layout_for_160x120() {
        // The paper's clips: 160x120. w' = 16 -> w = 13; h' = 104 -> h = 125;
        // b' = 128 -> b = 125; L' = 368 -> L = 253.
        let lay = AreaLayout::for_frame(160, 120).unwrap();
        assert_eq!(lay.w_raw, 16);
        assert_eq!(lay.b_raw, 128);
        assert_eq!(lay.h_raw, 104);
        assert_eq!(lay.l_raw, 368);
        assert_eq!(lay.w, 13);
        assert_eq!(lay.b, 125);
        assert_eq!(lay.h, 125);
        assert_eq!(lay.l, 253);
    }

    #[test]
    fn fraction_variant_scales_border() {
        let thin = AreaLayout::for_frame_with_fraction(160, 120, 0.05).unwrap();
        let paper = AreaLayout::for_frame(160, 120).unwrap();
        let thick = AreaLayout::for_frame_with_fraction(160, 120, 0.2).unwrap();
        assert_eq!(thin.w_raw, 8);
        assert_eq!(paper.w_raw, 16);
        assert_eq!(thick.w_raw, 32);
        assert!(thin.w <= paper.w && paper.w <= thick.w);
        // Default equals the paper's 10%.
        assert_eq!(
            paper,
            AreaLayout::for_frame_with_fraction(160, 120, 0.1).unwrap()
        );
    }

    #[test]
    #[should_panic(expected = "border fraction")]
    fn fraction_out_of_range_panics() {
        let _ = AreaLayout::for_frame_with_fraction(160, 120, 0.6);
    }

    #[test]
    fn tiny_frames_rejected() {
        assert!(matches!(
            AreaLayout::for_frame(8, 8),
            Err(CoreError::FrameTooSmall { .. })
        ));
        assert!(matches!(
            AreaLayout::for_frame(100, 10),
            Err(CoreError::FrameTooSmall { .. })
        ));
        assert!(AreaLayout::for_frame(40, 30).is_ok());
    }

    #[test]
    fn tba_dimensions_are_snapped() {
        let lay = AreaLayout::for_frame(160, 120).unwrap();
        let frame = FrameBuf::filled(160, 120, Rgb::gray(42));
        let tba = lay.extract_tba(&frame);
        assert_eq!((tba.rows(), tba.cols()), (lay.w, lay.l));
        // Uniform frame -> uniform TBA.
        assert!(tba.data().iter().all(|&p| p == Rgb::gray(42)));
    }

    #[test]
    fn foa_dimensions_are_snapped() {
        let lay = AreaLayout::for_frame(160, 120).unwrap();
        let frame = FrameBuf::filled(160, 120, Rgb::gray(7));
        let foa = lay.extract_foa(&frame);
        assert_eq!((foa.rows(), foa.cols()), (lay.h, lay.b));
        assert!(foa.data().iter().all(|&p| p == Rgb::gray(7)));
    }

    #[test]
    fn tba_samples_background_not_center() {
        // Paint the FOA region green, the border red: the TBA must be all
        // red, the FOA all green.
        let lay = AreaLayout::for_frame(160, 120).unwrap();
        let (w, h) = (lay.w_raw as u32, lay.h_raw as u32);
        let frame = FrameBuf::from_fn(160, 120, |x, y| {
            let in_foa = y >= w && x >= w && x < 160 - w && y < w + h;
            if in_foa {
                Rgb::new(0, 255, 0)
            } else {
                Rgb::new(255, 0, 0)
            }
        });
        let tba = lay.extract_tba(&frame);
        assert!(
            tba.data().iter().all(|&p| p == Rgb::new(255, 0, 0)),
            "TBA must only sample the ⊓-shaped border"
        );
        let foa = lay.extract_foa(&frame);
        assert!(
            foa.data().iter().all(|&p| p == Rgb::new(0, 255, 0)),
            "FOA must only sample the central region"
        );
    }

    #[test]
    fn tba_is_smooth_within_segments() {
        // A frame whose pixel value is a smooth ramp: within each of the
        // three strip segments (left column / top bar / right column) the
        // resampled TBA must not jump. (The two junction columns may jump by
        // up to ~w' because the frame's corner blocks belong to the bar, not
        // the columns.)
        let lay = AreaLayout::for_frame(160, 120).unwrap();
        let frame = FrameBuf::from_fn(160, 120, |x, y| {
            Rgb::gray((((x + y) * 255) / (160 + 120)) as u8)
        });
        let tba = lay.extract_tba(&frame);
        // Strip columns where the raw segments meet, in snapped coordinates.
        let j1 = (lay.h_raw as f64 * lay.l as f64 / lay.l_raw as f64).round() as usize;
        let j2 = ((lay.h_raw + lay.frame_width as usize) as f64 * lay.l as f64 / lay.l_raw as f64)
            .round() as usize;
        let near_junction = |col: usize| col.abs_diff(j1) <= 2 || col.abs_diff(j2) <= 2;
        for row in 0..tba.rows() {
            for col in 1..tba.cols() {
                if near_junction(col) || near_junction(col - 1) {
                    continue;
                }
                let a = tba.get(row, col - 1);
                let b = tba.get(row, col);
                assert!(
                    a.max_channel_diff(b) <= 8,
                    "discontinuity at row {row}, col {col}: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn horizontal_pan_shifts_tba_content() {
        // The whole point of the TBA: a horizontal camera pan becomes a
        // horizontal shift of the top-bar section of the strip.
        let lay = AreaLayout::for_frame(160, 120).unwrap();
        let world = |x: i64, y: i64| Rgb::gray((((x * 7 + y * 13) % 251) & 0xff) as u8);
        let frame_at =
            |dx: i64| FrameBuf::from_fn(160, 120, |x, y| world(i64::from(x) + dx, i64::from(y)));
        let t0 = lay.extract_tba(&frame_at(0));
        let t1 = lay.extract_tba(&frame_at(10));
        // Compare the top-bar middle sections shifted by 10 columns
        // (snapped L == raw L' is false here, so allow the nearest-neighbour
        // resampling to blur the match; check a correlation-style majority).
        let row = 0;
        let offset = (10.0 * lay.l as f64 / lay.l_raw as f64).round() as usize;
        let lo = lay.l / 3;
        let hi = 2 * lay.l / 3;
        let mut matches = 0;
        let mut total = 0;
        for col in lo..hi {
            total += 1;
            if t0.get(row, col + offset).max_channel_diff(t1.get(row, col)) <= 16 {
                matches += 1;
            }
        }
        assert!(
            matches * 10 >= total * 8,
            "pan should shift TBA content: {matches}/{total} matched"
        );
    }

    fn gather(frame: &FrameBuf, table: &[u32]) -> Vec<Rgb> {
        table.iter().map(|&i| frame.pixels()[i as usize]).collect()
    }

    #[test]
    fn index_tables_reproduce_closure_crops_exactly() {
        // The tables must evaluate the identical nearest-neighbor mapping:
        // gathering through them reproduces extract_tba/extract_foa bit for
        // bit, including odd dims where snapping is far from the raw size.
        for (w, h) in [
            (160u32, 120u32),
            (80, 60),
            (41, 31),
            (97, 73),
            (59, 47),
            (20, 20),
        ] {
            let lay = AreaLayout::for_frame(w, h).unwrap();
            let frame = FrameBuf::from_fn(w, h, |x, y| {
                Rgb::new(
                    ((x * 7 + y * 3) % 251) as u8,
                    ((x + y * 11) % 241) as u8,
                    ((x * 13 + y) % 239) as u8,
                )
            });
            let tba_table = lay.tba_index_table();
            assert_eq!(tba_table.len(), lay.w * lay.l);
            assert_eq!(
                gather(&frame, &tba_table),
                lay.extract_tba(&frame).data(),
                "TBA table mismatch at {w}x{h}"
            );
            let foa_table = lay.foa_index_table();
            assert_eq!(foa_table.len(), lay.h * lay.b);
            assert_eq!(
                gather(&frame, &foa_table),
                lay.extract_foa(&frame).data(),
                "FOA table mismatch at {w}x{h}"
            );
        }
    }

    proptest! {
        #[test]
        fn prop_index_tables_match_closure_crops(
            width in 20u32..400,
            height in 20u32..400,
            seed in any::<u8>(),
            // Sweep the crop rectangle too, not just the paper's 10%.
            frac_pct in 5u32..45,
        ) {
            let fraction = frac_pct as f64 / 100.0;
            if let Ok(lay) = AreaLayout::for_frame_with_fraction(width, height, fraction) {
                let frame = FrameBuf::from_fn(width, height, |x, y| {
                    Rgb::gray(((x * 3 + y * 5) as u8).wrapping_add(seed))
                });
                let tba = lay.extract_tba(&frame);
                let foa = lay.extract_foa(&frame);
                prop_assert_eq!(gather(&frame, &lay.tba_index_table()), tba.data());
                prop_assert_eq!(gather(&frame, &lay.foa_index_table()), foa.data());
            }
        }

        #[test]
        fn prop_layout_dims_in_size_set(width in 20u32..1000, height in 20u32..1000) {
            if let Ok(lay) = AreaLayout::for_frame(width, height) {
                use crate::sizeset::in_size_set;
                prop_assert!(in_size_set(lay.w));
                prop_assert!(in_size_set(lay.b));
                prop_assert!(in_size_set(lay.h));
                prop_assert!(in_size_set(lay.l));
            }
        }

        #[test]
        fn prop_extraction_never_panics(width in 20u32..400, height in 20u32..400, seed in any::<u8>()) {
            if let Ok(lay) = AreaLayout::for_frame(width, height) {
                let frame = FrameBuf::from_fn(width, height, |x, y| {
                    Rgb::gray(((x * 3 + y * 5) as u8).wrapping_add(seed))
                });
                let tba = lay.extract_tba(&frame);
                let foa = lay.extract_foa(&frame);
                prop_assert_eq!((tba.rows(), tba.cols()), (lay.w, lay.l));
                prop_assert_eq!((foa.rows(), foa.cols()), (lay.h, lay.b));
            }
        }

        #[test]
        fn prop_uniform_frame_uniform_areas(width in 20u32..300, height in 20u32..300, v in any::<u8>()) {
            if let Ok(lay) = AreaLayout::for_frame(width, height) {
                let frame = FrameBuf::filled(width, height, Rgb::gray(v));
                prop_assert!(lay.extract_tba(&frame).data().iter().all(|&p| p == Rgb::gray(v)));
                prop_assert!(lay.extract_foa(&frame).data().iter().all(|&p| p == Rgb::gray(v)));
            }
        }
    }
}
