//! Pins the journal's group-commit contract: K streamed commits staged
//! concurrently must share write barriers instead of paying one fsync
//! each, and the batching must never trade away durability.

use std::sync::Mutex;
use vdb_core::analyzer::AnalyzerConfig;
use vdb_core::{StreamingAnalyzer, VideoAnalysis};
use vdb_store::JournaledDatabase;
use vdb_synth::script::generate;
use vdb_synth::{build_script, Genre};

const K: usize = 6;

fn temp_journal(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("vdb-group-commit-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("db.vdbj")
}

fn analysis() -> ((u32, u32), f64, VideoAnalysis) {
    let clip = generate(&build_script(Genre::Drama, 3, Some(8.0), (48, 36), 17)).video;
    let mut analyzer = StreamingAnalyzer::new(AnalyzerConfig::default());
    analyzer.push_frames(clip.frames()).unwrap();
    ((48, 36), clip.fps(), analyzer.finish().unwrap())
}

/// The deterministic fsync pin: staging K commits before waiting any
/// ticket must ride fewer than K write barriers — the first waiter leads
/// one batched write that covers everything staged behind it. The
/// wait-per-commit loop is the contrast and pays a barrier per commit.
#[test]
fn staged_commits_share_write_barriers() {
    let (dims, fps, analysis) = analysis();

    let path = temp_journal("staged");
    let mut j = JournaledDatabase::open(&path, AnalyzerConfig::default()).unwrap();
    let before = j.journal_stats();
    let tickets: Vec<_> = (0..K)
        .map(|i| {
            j.commit_stream(format!("s{i}"), dims, fps, analysis.clone(), vec![], vec![])
                .unwrap()
                .1
        })
        .collect();
    for ticket in tickets {
        ticket.wait().unwrap();
    }
    let grouped = j.journal_stats().batches - before.batches;
    assert!(
        (grouped as usize) < K,
        "{K} staged commits took {grouped} write barriers — group commit is not batching"
    );

    let path = temp_journal("serial");
    let mut j = JournaledDatabase::open(&path, AnalyzerConfig::default()).unwrap();
    let before = j.journal_stats();
    for i in 0..K {
        let (_, ticket) = j
            .commit_stream(format!("s{i}"), dims, fps, analysis.clone(), vec![], vec![])
            .unwrap();
        ticket.wait().unwrap();
    }
    let serial = j.journal_stats().batches - before.batches;
    assert_eq!(
        serial as usize, K,
        "waiting out each commit must cost one barrier per commit"
    );
    assert!(grouped < serial);
}

/// Batching must not weaken durability: K threads committing through a
/// shared journal all ack only after their records are on disk, and every
/// video survives a reopen with its full analysis.
#[test]
fn concurrent_commits_are_individually_durable() {
    let (dims, fps, analysis) = analysis();
    let path = temp_journal("threads");
    let j = Mutex::new(JournaledDatabase::open(&path, AnalyzerConfig::default()).unwrap());

    std::thread::scope(|s| {
        for i in 0..K {
            let j = &j;
            let analysis = analysis.clone();
            s.spawn(move || {
                // Stage under the lock, wait the barrier outside it — the
                // same discipline vdbd's session pumps follow.
                let (_, ticket) = j
                    .lock()
                    .unwrap()
                    .commit_stream(format!("t{i}"), dims, fps, analysis, vec![], vec![])
                    .unwrap();
                assert!(ticket.is_pending());
                ticket.wait().unwrap();
            });
        }
    });

    let stats = j.lock().unwrap().journal_stats();
    assert!(stats.staged_records >= K as u64);
    drop(j);

    let reopened = JournaledDatabase::open(&path, AnalyzerConfig::default()).unwrap();
    assert_eq!(reopened.db().len(), K);
    for meta in reopened.db().catalog().all() {
        assert!(reopened.db().analysis(meta.id).is_ok());
    }
}
