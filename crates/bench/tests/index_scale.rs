//! The 1M-shot pin on the sublinear index (run with `--ignored` in the
//! CI bench-snapshot job, release profile):
//!
//! * the bucket index over one million synthetic shots builds inside a
//!   wall-clock budget;
//! * indexed top-k answers are *identical* to the full-ranking scan and
//!   at least 10× faster (the acceptance bar for this index existing
//!   at all);
//! * probe p99 stays under an absolute latency budget and resident
//!   memory stays bounded;
//! * the run is reported as `BENCH_INDEX.new.json` and, when a baseline
//!   snapshot is present, gated against it: probe p99 may not regress
//!   by more than 25% (plus a 100µs absolute allowance so µs-level
//!   noise cannot flap the gate).
//!
//! Knobs: `VDB_INDEX_BASELINE` overrides the baseline path (default
//! `<repo>/BENCH_INDEX.json`); `VDB_INDEX_MAX_REGRESS` the fractional
//! allowance (default `0.25`).

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;
use vdb_core::index::{BucketParams, IndexEntry, ShotIndex, ShotKey, VarianceQuery};
use vdb_core::variance::ShotFeature;
use vdb_synth::rng::Srng;

const N: usize = 1_000_000;
const PROBES: usize = 64;
const K: usize = 10;
/// Build budget (seconds): sorting 1M rows takes well under a second in
/// release; the budget leaves room for a slow shared CI runner.
const BUILD_BUDGET_SECS: f64 = 30.0;
/// Absolute indexed-probe p99 budget (µs).
const PROBE_P99_BUDGET_US: f64 = 20_000.0;
/// Resident-set ceiling (MiB): ~32 MiB of entries plus index mirrors and
/// the test's own copies fit far below this even with allocator slack.
const RSS_BUDGET_MIB: u64 = 2_048;

/// The three-cluster mixture shared with the equivalence and cost-model
/// suites, at a million rows.
fn corpus() -> Vec<IndexEntry> {
    let clusters = [(2.0, 12.0, 1.5), (25.0, 18.0, 5.0), (60.0, 30.0, 10.0)];
    let mut rng = Srng::new(0x15ca1e);
    (0..N)
        .map(|i| {
            let (cb, co, s) = *rng.pick(&clusters);
            IndexEntry::new(
                ShotKey {
                    video: (i / 500) as u64,
                    shot: (i % 500) as u32,
                },
                ShotFeature {
                    var_ba: (cb + rng.gauss() * s).max(0.0),
                    var_oa: (co + rng.gauss() * s).max(0.0),
                },
            )
        })
        .collect()
}

fn probe_set(entries: &[IndexEntry]) -> Vec<VarianceQuery> {
    let mut rng = Srng::new(0xbeef);
    (0..PROBES)
        .map(|_| {
            let e = entries[rng.range_usize(0, entries.len() - 1)];
            VarianceQuery::by_example(ShotFeature {
                var_ba: e.var_ba,
                var_oa: e.var_oa,
            })
            .with_tolerances(0.5, 0.5)
        })
        .collect()
}

fn quantiles(mut us: Vec<f64>) -> (f64, f64) {
    us.sort_by(f64::total_cmp);
    let p = |q: f64| us[((us.len() - 1) as f64 * q).round() as usize];
    (p(0.5), p(0.99))
}

/// `VmRSS` in MiB, or `None` off Linux / if procfs is unreadable.
fn rss_mib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib / 1024)
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

fn baseline_probe_p99(path: &PathBuf) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let root = serde_json::parse(&text).ok()?;
    let serde::Value::Object(fields) = &root else {
        return None;
    };
    match fields.iter().find(|(k, _)| k == "probe_p99_us")?.1 {
        serde::Value::Float(x) => Some(x),
        serde::Value::Int(n) => Some(n as f64),
        _ => None,
    }
}

#[test]
#[ignore = "1M-shot scale pin: run in release via the CI bench-snapshot job"]
fn one_million_shots_index_vs_scan() {
    let entries = corpus();
    let queries = probe_set(&entries);

    let t = Instant::now();
    let idx = ShotIndex::from_entries(entries, BucketParams::default());
    let build_seconds = t.elapsed().as_secs_f64();
    assert_eq!(idx.len(), N);
    assert!(
        build_seconds <= BUILD_BUDGET_SECS,
        "index build took {build_seconds:.1}s (budget {BUILD_BUDGET_SECS}s)"
    );

    // Warm both paths once so first-touch effects hit neither timing.
    idx.query_topk(&queries[0], K);
    idx.query_topk_scan(&queries[0], K);

    let mut probe_us = Vec::with_capacity(PROBES);
    let mut scan_us = Vec::with_capacity(PROBES);
    for q in &queries {
        let t = Instant::now();
        let fast = idx.query_topk(q, K);
        probe_us.push(t.elapsed().as_secs_f64() * 1e6);
        let t = Instant::now();
        let slow = idx.query_topk_scan(q, K);
        scan_us.push(t.elapsed().as_secs_f64() * 1e6);
        let fast_keys: Vec<ShotKey> = fast.iter().map(|m| m.entry.key).collect();
        let slow_keys: Vec<ShotKey> = slow.iter().map(|m| m.entry.key).collect();
        assert_eq!(fast_keys, slow_keys, "indexed top-k diverged from scan");
    }
    let (probe_p50, probe_p99) = quantiles(probe_us);
    let (scan_p50, scan_p99) = quantiles(scan_us);
    let speedup = scan_p50 / probe_p50.max(1e-9);
    let rss = rss_mib();
    eprintln!(
        "index_scale: build {build_seconds:.2}s, probe p50/p99 {probe_p50:.0}/{probe_p99:.0}µs, \
         scan p50/p99 {scan_p50:.0}/{scan_p99:.0}µs, speedup {speedup:.1}x, rss {rss:?} MiB"
    );

    assert!(
        speedup >= 10.0,
        "indexed top-k must be ≥10× the scan at 1M shots, got {speedup:.1}x \
         (probe p50 {probe_p50:.0}µs vs scan p50 {scan_p50:.0}µs)"
    );
    assert!(
        probe_p99 <= PROBE_P99_BUDGET_US,
        "probe p99 {probe_p99:.0}µs over budget {PROBE_P99_BUDGET_US:.0}µs"
    );
    if let Some(mib) = rss {
        assert!(
            mib <= RSS_BUDGET_MIB,
            "resident set {mib} MiB over budget {RSS_BUDGET_MIB} MiB"
        );
    }

    // --- Snapshot for the CI artifact. ---
    let mut json = String::from("{\n  \"schema\": \"vdb-bench-index/v1\",\n");
    let _ = writeln!(json, "  \"shots\": {N}, \"probes\": {PROBES}, \"k\": {K},");
    let _ = writeln!(json, "  \"build_seconds\": {build_seconds:.3},");
    let _ = writeln!(
        json,
        "  \"probe_p50_us\": {probe_p50:.1}, \"probe_p99_us\": {probe_p99:.1},"
    );
    let _ = writeln!(
        json,
        "  \"scan_p50_us\": {scan_p50:.1}, \"scan_p99_us\": {scan_p99:.1},"
    );
    let _ = writeln!(json, "  \"speedup_p50\": {speedup:.2},");
    let _ = writeln!(json, "  \"rss_mib\": {}", rss.unwrap_or(0));
    json.push_str("}\n");
    let out = repo_root().join("BENCH_INDEX.new.json");
    std::fs::write(&out, &json).expect("write snapshot");
    eprintln!("index_scale: wrote {}", out.display());

    // --- Regression gate vs the checked-in baseline. ---
    let baseline_path = std::env::var("VDB_INDEX_BASELINE")
        .map(PathBuf::from)
        .unwrap_or_else(|_| repo_root().join("BENCH_INDEX.json"));
    let max_regress: f64 = std::env::var("VDB_INDEX_MAX_REGRESS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25);
    match baseline_probe_p99(&baseline_path) {
        Some(base_p99) => {
            // 25% relative plus a 100µs absolute allowance: machines
            // differ by µs even when nothing changed.
            let ceiling = base_p99 * (1.0 + max_regress) + 100.0;
            assert!(
                probe_p99 <= ceiling,
                "probe p99 regressed: {probe_p99:.0}µs > ceiling {ceiling:.0}µs \
                 (baseline {base_p99:.0}µs, max regress {:.0}%)",
                max_regress * 100.0
            );
            eprintln!(
                "index_scale: within budget: probe p99 {probe_p99:.0}µs vs baseline \
                 {base_p99:.0}µs (ceiling {ceiling:.0}µs)"
            );
        }
        None => eprintln!(
            "index_scale: no baseline at {} — gate skipped",
            baseline_path.display()
        ),
    }
}
