//! Observability must be free when it is off: an engine wired to a
//! *disabled* registry may not measurably slow the warm streaming path
//! compared to an engine built with no instrumentation at all.
//!
//! Methodology: the two engines analyze the same clip in strict
//! alternation (so thermal drift, page-cache state, and scheduler noise
//! hit both sides equally) and each side keeps its *minimum* elapsed
//! time — the min-of-N estimator converges on the true cost because all
//! measurement noise is additive. The timing budget is only *enforced*
//! in optimized builds: the <2% guarantee is a property of release code
//! (where the `Option<PipelineMetrics>` checks and `Span` drop glue
//! compile away), and debug-build wall clock on shared CI runners is
//! dominated by scheduler noise. Debug runs still execute both engines
//! and assert their analyses are identical.

use std::time::{Duration, Instant};
use vdb_core::analyzer::AnalyzerConfig;
use vdb_core::pipeline::AnalysisEngine;
use vdb_obs::{global_tracer, Registry, TraceContext, Tracer};
use vdb_synth::{build_script, generate, Genre};

#[test]
fn disabled_observability_adds_no_measurable_overhead() {
    let script = build_script(Genre::Sitcom, 12, None, (64, 48), 77);
    let video = generate(&script).video;
    let config = AnalyzerConfig::default();

    let disabled = Registry::disabled();

    let run = |instrumented: bool| -> (Duration, usize) {
        let start = Instant::now();
        let analysis = if instrumented {
            let mut engine = AnalysisEngine::with_registry(config, &disabled);
            engine.analyze(&video).expect("analyze")
        } else {
            let mut engine = AnalysisEngine::without_observability(config);
            engine.analyze(&video).expect("analyze")
        };
        let elapsed = start.elapsed();
        assert!(
            !analysis.segmentation.shots.is_empty(),
            "sanity: real work happened"
        );
        (elapsed, analysis.segmentation.shots.len())
    };

    // Warm-up — touch both paths so lazy init and caches are paid up
    // front — and check the engines agree on the analysis itself.
    let (_, shots_instrumented) = run(true);
    let (_, shots_bare) = run(false);
    assert_eq!(
        shots_instrumented, shots_bare,
        "instrumentation must not perturb results"
    );

    const ROUNDS: usize = 9;
    let mut best_disabled = Duration::MAX;
    let mut best_bare = Duration::MAX;
    for _ in 0..ROUNDS {
        best_disabled = best_disabled.min(run(true).0);
        best_bare = best_bare.min(run(false).0);
    }

    // 2% relative budget, plus 300µs absolute epsilon for timer and
    // allocator granularity on small workloads.
    let budget = best_bare + best_bare / 50 + Duration::from_micros(300);
    if cfg!(debug_assertions) {
        // Unoptimized builds pay ~3% for the un-inlined instrumentation
        // glue and debug wall clock swings far wider than that under CI
        // load, so report instead of asserting.
        eprintln!(
            "obs_overhead (debug, informational): disabled {best_disabled:?} vs bare \
             {best_bare:?} (release budget would be {budget:?})"
        );
        return;
    }
    assert!(
        best_disabled <= budget,
        "disabled-registry engine too slow: {best_disabled:?} vs bare {best_bare:?} \
         (budget {budget:?})"
    );
}

/// Request tracing must also be free when it is off: analyzing under a
/// *sampled-out* trace context (what head sampling hands most requests)
/// may not measurably slow the pipeline versus the plain untraced entry
/// point, and — structurally — must never write the process-wide flight
/// recorder. Same strict-alternation min-of-N methodology as above; the
/// timing budget is likewise enforced only in release builds.
#[test]
fn sampled_out_tracing_writes_nothing_and_adds_no_measurable_cost() {
    let script = build_script(Genre::Sitcom, 12, None, (64, 48), 78);
    let video = generate(&script).video;
    let config = AnalyzerConfig::default();
    let disabled = Registry::disabled();

    // sample_every = 0 samples nothing: the root context comes back
    // unsampled, exactly what a head-sampled-out request carries.
    let tracer = Tracer::new(16);
    tracer.set_sample_every(0);
    let sampled_out = tracer.trace_root();
    assert!(!sampled_out.is_sampled());
    assert_eq!(sampled_out, TraceContext::disabled());

    // Spans opened under a sampled-out context are fully inert: not
    // recording, attrs are no-ops, and nothing reaches the ring.
    let recorder = global_tracer().recorder();
    let before = recorder.total_recorded();
    {
        let mut span = global_tracer().span(&sampled_out, "bench.probe");
        assert!(!span.is_recording());
        span.attr("ignored", 1);
    }
    assert_eq!(
        recorder.total_recorded(),
        before,
        "inert span must not write the flight recorder"
    );

    let run = |ctx: Option<&TraceContext>| -> Duration {
        let mut engine = AnalysisEngine::with_registry(config, &disabled);
        let start = Instant::now();
        let analysis = match ctx {
            Some(ctx) => engine.analyze_traced(&video, ctx).expect("analyze"),
            None => engine.analyze(&video).expect("analyze"),
        };
        let elapsed = start.elapsed();
        assert!(!analysis.segmentation.shots.is_empty());
        elapsed
    };

    run(Some(&sampled_out));
    run(None);
    const ROUNDS: usize = 9;
    let mut best_traced = Duration::MAX;
    let mut best_plain = Duration::MAX;
    for _ in 0..ROUNDS {
        best_traced = best_traced.min(run(Some(&sampled_out)));
        best_plain = best_plain.min(run(None));
    }

    // The whole alternation ran under sampled-out contexts: still not one
    // ring write (hence no span ids allocated and no span clock reads).
    assert_eq!(
        recorder.total_recorded(),
        before,
        "sampled-out analyze must not write the flight recorder"
    );

    let budget = best_plain + best_plain / 50 + Duration::from_micros(300);
    if cfg!(debug_assertions) {
        eprintln!(
            "trace_overhead (debug, informational): sampled-out {best_traced:?} vs plain \
             {best_plain:?} (release budget would be {budget:?})"
        );
        return;
    }
    assert!(
        best_traced <= budget,
        "sampled-out tracing too slow: {best_traced:?} vs plain {best_plain:?} \
         (budget {budget:?})"
    );
}
