//! `loadgen` — closed-loop load generator for the `vdbd` serving layer.
//!
//! ```text
//! loadgen [--requests N] [--clips N] [--connections a,b,c] [--addr HOST:PORT]
//! ```
//!
//! By default it starts an in-process server over a synthetic database and
//! drives it over loopback at 1, 4, and 16 connections (a fresh server per
//! level, so counters and latency histograms are per-level), printing a
//! throughput/latency table from the server's own `ServerMetrics`.
//! With `--addr` it drives an external `vdbd` instead and reports
//! client-side wall-clock throughput only.

use std::process::exit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;
use vdb_server::{Client, Server, ServerConfig, ServerStore};

struct Args {
    requests: usize,
    clips: usize,
    connections: Vec<usize>,
    addr: Option<String>,
}

fn usage() -> ! {
    eprintln!("usage: loadgen [--requests N] [--clips N] [--connections a,b,c] [--addr HOST:PORT]");
    exit(2);
}

fn parse_args() -> Args {
    let mut out = Args {
        requests: 2000,
        clips: 4,
        connections: vec![1, 4, 16],
        addr: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else { usage() };
        match flag.as_str() {
            "--requests" => out.requests = value.parse().unwrap_or_else(|_| usage()),
            "--clips" => out.clips = value.parse().unwrap_or_else(|_| usage()),
            "--connections" => {
                out.connections = value
                    .split(',')
                    .map(|v| v.parse().unwrap_or_else(|_| usage()))
                    .collect();
                if out.connections.is_empty() {
                    usage()
                }
            }
            "--addr" => out.addr = Some(value),
            _ => usage(),
        }
    }
    out
}

/// The request mix: read-heavy browsing, the serving layer's design load.
fn request_line(i: usize) -> String {
    match i % 5 {
        0 => "stats".to_string(),
        1 => format!("query ba=0.{} oa=1{} alpha=4 beta=4 limit=8", i % 10, i % 7),
        2 => "tree 0".to_string(),
        3 => format!("board {} 6", i % 2),
        _ => "list".to_string(),
    }
}

/// Drive `total` requests through `conns` persistent connections; returns
/// elapsed wall-clock seconds.
fn drive(addr: std::net::SocketAddr, conns: usize, total: usize) -> f64 {
    let next = AtomicUsize::new(0);
    let started = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..conns {
            let next = &next;
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let line = request_line(i);
                    let resp = client.request(&line).expect("response");
                    assert!(resp.ok, "'{line}' failed: {}", resp.text);
                }
            });
        }
    });
    started.elapsed().as_secs_f64()
}

fn main() {
    let args = parse_args();

    if let Some(addr) = &args.addr {
        let addr = match std::net::ToSocketAddrs::to_socket_addrs(&addr.as_str())
            .ok()
            .and_then(|mut a| a.next())
        {
            Some(a) => a,
            None => {
                eprintln!("loadgen: bad address '{addr}'");
                exit(2);
            }
        };
        println!("target {addr} ({} requests per level)", args.requests);
        println!("{:>5}  {:>9}  {:>9}", "conns", "elapsed", "qps");
        for &conns in &args.connections {
            let secs = drive(addr, conns, args.requests);
            println!(
                "{conns:>5}  {:>8.2}s  {:>9.0}",
                secs,
                args.requests as f64 / secs
            );
        }
        return;
    }

    println!(
        "in-process vdbd, {} synthetic clips, {} requests per level",
        args.clips, args.requests
    );
    println!(
        "{:>5}  {:>9}  {:>9}  {:>9}  {:>9}",
        "conns", "elapsed", "qps", "p50", "p99"
    );
    for &conns in &args.connections {
        // Fresh server per level: latency quantiles are per-level too.
        let store = ServerStore::memory();
        store.write(|backend| {
            use vdb_store::shell::{execute_mutation, Command};
            execute_mutation(backend, &Command::Demo(args.clips)).expect("demo is a mutation")
        });
        let config = ServerConfig {
            workers: conns.max(1),
            ..ServerConfig::default()
        };
        let handle = Server::bind(store, config).expect("bind").serve();
        let secs = drive(handle.addr(), conns, args.requests);
        let snapshot = handle.shutdown().expect("clean shutdown");
        assert_eq!(snapshot.total_requests(), args.requests as u64);
        assert_eq!(snapshot.total_errors(), 0);
        let (p50, p99) = snapshot.overall_latency();
        println!(
            "{conns:>5}  {:>8.2}s  {:>9.0}  {:>6}us  {:>6}us",
            secs,
            args.requests as f64 / secs,
            p50,
            p99
        );
    }
}
