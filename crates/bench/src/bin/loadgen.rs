//! `loadgen` — closed-loop load generator for the `vdbd` serving layer.
//!
//! ```text
//! loadgen [--requests N] [--clips N] [--connections a,b,c] [--addr HOST:PORT]
//! loadgen --streams a,b,c [--frames M] [--rounds R] [--addr HOST:PORT]
//! loadgen --router N [--requests N] [--clips N] [--connections a,b,c]
//! ```
//!
//! By default it starts an in-process server over a synthetic database and
//! drives it over loopback at 1, 4, and 16 connections (a fresh server per
//! level, so counters and latency histograms are per-level), printing a
//! throughput/latency table from the server's own `ServerMetrics`.
//! With `--addr` it drives an external `vdbd` instead and reports
//! client-side wall-clock throughput only.
//!
//! `--streams` switches to streaming-ingest load: each level runs that
//! many concurrent wire streams closed-loop (`--rounds` clips per stream
//! of `--frames` frames each), reporting ingest frames/s, client-side
//! commit p50/p99, and the server's peak buffered-frame count against the
//! credit window.
//!
//! `--router N` boots N in-process memory shards plus a `vdb-router` in
//! front, streams the synthetic clips through the router (so they
//! consistent-hash across shards), and drives the same read-heavy mix
//! against the router — the scatter-gather overhead measured against the
//! single-node table above.

use std::process::exit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use vdb_core::frame::FrameBuf;
use vdb_server::{Client, Server, ServerConfig, ServerStore};

struct Args {
    requests: usize,
    clips: usize,
    connections: Vec<usize>,
    addr: Option<String>,
    streams: Vec<usize>,
    frames: usize,
    rounds: usize,
    router: Option<usize>,
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--requests N] [--clips N] [--connections a,b,c] [--addr HOST:PORT]\n       loadgen --streams a,b,c [--frames M] [--rounds R] [--addr HOST:PORT]\n       loadgen --router N [--requests N] [--clips N] [--connections a,b,c]"
    );
    exit(2);
}

fn parse_list(value: &str) -> Vec<usize> {
    let list: Vec<usize> = value
        .split(',')
        .map(|v| v.parse().unwrap_or_else(|_| usage()))
        .collect();
    if list.is_empty() || list.contains(&0) {
        usage()
    }
    list
}

fn parse_args() -> Args {
    let mut out = Args {
        requests: 2000,
        clips: 4,
        connections: vec![1, 4, 16],
        addr: None,
        streams: Vec::new(),
        frames: 96,
        rounds: 2,
        router: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else { usage() };
        match flag.as_str() {
            "--requests" => out.requests = value.parse().unwrap_or_else(|_| usage()),
            "--clips" => out.clips = value.parse().unwrap_or_else(|_| usage()),
            "--connections" => out.connections = parse_list(&value),
            "--streams" => out.streams = parse_list(&value),
            "--frames" => match value.parse() {
                Ok(n) if n > 0 => out.frames = n,
                _ => usage(),
            },
            "--rounds" => match value.parse() {
                Ok(n) if n > 0 => out.rounds = n,
                _ => usage(),
            },
            "--addr" => out.addr = Some(value),
            "--router" => match value.parse() {
                Ok(n) if n > 0 => out.router = Some(n),
                _ => usage(),
            },
            _ => usage(),
        }
    }
    out
}

/// The request mix: read-heavy browsing, the serving layer's design load.
fn request_line(i: usize) -> String {
    match i % 5 {
        0 => "stats".to_string(),
        1 => format!("query ba=0.{} oa=1{} alpha=4 beta=4 limit=8", i % 10, i % 7),
        2 => "tree 0".to_string(),
        3 => format!("board {} 6", i % 2),
        _ => "list".to_string(),
    }
}

/// Drive `total` requests through `conns` persistent connections; returns
/// elapsed wall-clock seconds.
fn drive(addr: std::net::SocketAddr, conns: usize, total: usize) -> f64 {
    let next = AtomicUsize::new(0);
    let started = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..conns {
            let next = &next;
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let line = request_line(i);
                    let resp = client.request(&line).expect("response");
                    assert!(resp.ok, "'{line}' failed: {}", resp.text);
                }
            });
        }
    });
    started.elapsed().as_secs_f64()
}

/// Pre-render the frames every streaming worker pushes: a small synthetic
/// clip, cycled until each stream has pushed `frames` frames.
fn stream_frames(frames: usize) -> ((u32, u32), f64, Vec<FrameBuf>) {
    let script = vdb_synth::build_script(vdb_synth::Genre::Drama, 3, Some(10.0), (48, 36), 11);
    let video = vdb_synth::generate(&script).video;
    let cycle = video.frames();
    let rendered = (0..frames)
        .map(|i| cycle[i % cycle.len()].clone())
        .collect();
    (video.dims(), video.fps(), rendered)
}

/// Drive `conns` concurrent wire streams closed-loop: each worker opens a
/// session, pushes every frame, commits, and immediately starts the next
/// clip until `total` commits have landed. Returns elapsed seconds and the
/// sorted client-side commit latencies in microseconds.
fn drive_streams(
    addr: std::net::SocketAddr,
    conns: usize,
    total: usize,
    frames: &[FrameBuf],
    dims: (u32, u32),
    fps: f64,
) -> (f64, Vec<u64>) {
    let next = AtomicUsize::new(0);
    let commit_us = Mutex::new(Vec::with_capacity(total));
    let started = Instant::now();
    std::thread::scope(|s| {
        for worker in 0..conns {
            let next = &next;
            let commit_us = &commit_us;
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client
                    .set_timeout(Some(std::time::Duration::from_secs(300)))
                    .expect("socket timeout");
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let name = format!("load-{worker}-{i}");
                    let mut stream = client
                        .open_stream(&name, dims.0, dims.1, fps)
                        .expect("open stream");
                    for frame in frames {
                        stream.push(frame).expect("push frame");
                    }
                    let commit_started = Instant::now();
                    let commit = stream.commit().expect("commit");
                    let us = commit_started.elapsed().as_micros() as u64;
                    assert_eq!(commit.frames, frames.len(), "server consumed every frame");
                    commit_us.lock().unwrap().push(us);
                }
            });
        }
    });
    let secs = started.elapsed().as_secs_f64();
    let mut latencies = commit_us.into_inner().unwrap();
    latencies.sort_unstable();
    (secs, latencies)
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn run_stream_levels(args: &Args) {
    let (dims, fps, frames) = stream_frames(args.frames);
    let external = args.addr.as_ref().map(|addr| {
        std::net::ToSocketAddrs::to_socket_addrs(&addr.as_str())
            .ok()
            .and_then(|mut a| a.next())
            .unwrap_or_else(|| {
                eprintln!("loadgen: bad address '{addr}'");
                exit(2)
            })
    });
    println!(
        "streaming ingest, {} frames/clip at {}x{}, {} clips per stream",
        args.frames, dims.0, dims.1, args.rounds
    );
    println!(
        "{:>7}  {:>9}  {:>9}  {:>10}  {:>10}  {:>9}",
        "streams", "elapsed", "frames/s", "commit p50", "commit p99", "peak buf"
    );
    for &streams in &args.streams {
        let total = streams * args.rounds;
        let handle = external.is_none().then(|| {
            let config = ServerConfig {
                workers: streams.max(1),
                max_sessions: streams.max(1),
                ..ServerConfig::default()
            };
            Server::bind(ServerStore::memory(), config)
                .expect("bind")
                .serve()
        });
        let addr = external.unwrap_or_else(|| handle.as_ref().expect("in-process server").addr());
        let (secs, commits) = drive_streams(addr, streams, total, &frames, dims, fps);
        let peak = match handle {
            Some(handle) => {
                let stats = handle.stream_stats();
                let peak = format!("{}/{}", stats.buffered_peak, stats.credit_window);
                handle.shutdown().expect("clean shutdown");
                peak
            }
            None => "-".to_string(),
        };
        println!(
            "{streams:>7}  {:>8.2}s  {:>9.0}  {:>8}us  {:>8}us  {:>9}",
            secs,
            (total * args.frames) as f64 / secs,
            quantile(&commits, 0.50),
            quantile(&commits, 0.99),
            peak
        );
    }
}

/// Boot `shards` in-process memory shards plus a router, stream the
/// synthetic clips through the router, then drive the read mix against
/// it — one fresh cluster per connection level.
fn run_router_levels(args: &Args, shards: usize) {
    use vdb_router::{Router, RouterConfig};
    println!(
        "in-process router over {shards} memory shards, {} clips, {} requests per level",
        args.clips.max(2),
        args.requests
    );
    println!(
        "{:>5}  {:>9}  {:>9}  {:>9}  {:>9}",
        "conns", "elapsed", "qps", "p50", "p99"
    );
    let (dims, fps, frames) = stream_frames(48);
    for &conns in &args.connections {
        let mut shard_handles = Vec::with_capacity(shards);
        let mut shard_addrs = Vec::with_capacity(shards);
        for slot in 0..shards {
            // Every in-flight router request may hold one connection on
            // every shard, and a vdbd worker serves one connection at a
            // time — so shards need as many workers as the offered
            // concurrency or the scatter arms starve into their deadline.
            let config = ServerConfig {
                workers: conns.max(2),
                shard_id: Some(slot.to_string()),
                ..ServerConfig::default()
            };
            let handle = Server::bind(ServerStore::memory(), config)
                .expect("bind shard")
                .serve();
            shard_addrs.push(handle.addr().to_string());
            shard_handles.push(handle);
        }
        let router = Router::bind(RouterConfig {
            shards: shard_addrs,
            workers: conns.max(1),
            ..RouterConfig::default()
        })
        .expect("bind router")
        .serve();
        // The read mix boards/trees ids 0 and 1, so at least two clips.
        let mut client = Client::connect(router.addr()).expect("connect router");
        for i in 0..args.clips.max(2) {
            let mut stream = client
                .open_stream(&format!("router-clip-{i}"), dims.0, dims.1, fps)
                .expect("open stream through router");
            for frame in &frames {
                stream.push(frame).expect("push frame");
            }
            stream.commit().expect("commit through router");
        }
        drop(client);
        let secs = drive(router.addr(), conns, args.requests);
        let snapshot = router.shutdown();
        for handle in shard_handles {
            handle.shutdown().expect("shard shutdown");
        }
        assert_eq!(snapshot.total_errors(), 0);
        let (p50, p99) = snapshot.overall_latency();
        println!(
            "{conns:>5}  {:>8.2}s  {:>9.0}  {:>6}us  {:>6}us",
            secs,
            args.requests as f64 / secs,
            p50,
            p99
        );
    }
}

fn main() {
    let args = parse_args();

    if let Some(shards) = args.router {
        run_router_levels(&args, shards);
        return;
    }

    if !args.streams.is_empty() {
        run_stream_levels(&args);
        return;
    }

    if let Some(addr) = &args.addr {
        let addr = match std::net::ToSocketAddrs::to_socket_addrs(&addr.as_str())
            .ok()
            .and_then(|mut a| a.next())
        {
            Some(a) => a,
            None => {
                eprintln!("loadgen: bad address '{addr}'");
                exit(2);
            }
        };
        println!("target {addr} ({} requests per level)", args.requests);
        println!("{:>5}  {:>9}  {:>9}", "conns", "elapsed", "qps");
        for &conns in &args.connections {
            let secs = drive(addr, conns, args.requests);
            println!(
                "{conns:>5}  {:>8.2}s  {:>9.0}",
                secs,
                args.requests as f64 / secs
            );
        }
        return;
    }

    println!(
        "in-process vdbd, {} synthetic clips, {} requests per level",
        args.clips, args.requests
    );
    println!(
        "{:>5}  {:>9}  {:>9}  {:>9}  {:>9}",
        "conns", "elapsed", "qps", "p50", "p99"
    );
    for &conns in &args.connections {
        // Fresh server per level: latency quantiles are per-level too.
        let store = ServerStore::memory();
        store.write(|backend| {
            use vdb_store::shell::{execute_mutation, Command};
            execute_mutation(backend, &Command::Demo(args.clips)).expect("demo is a mutation")
        });
        let config = ServerConfig {
            workers: conns.max(1),
            ..ServerConfig::default()
        };
        let handle = Server::bind(store, config).expect("bind").serve();
        let secs = drive(handle.addr(), conns, args.requests);
        let snapshot = handle.shutdown().expect("clean shutdown");
        assert_eq!(snapshot.total_requests(), args.requests as u64);
        assert_eq!(snapshot.total_errors(), 0);
        let (p50, p99) = snapshot.overall_latency();
        println!(
            "{conns:>5}  {:>8.2}s  {:>9.0}  {:>6}us  {:>6}us",
            secs,
            args.requests as f64 / secs,
            p50,
            p99
        );
    }
}
