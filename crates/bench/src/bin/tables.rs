//! Regenerate the paper's tables on the synthetic corpus.
//!
//! ```text
//! cargo run -p vdb-bench --release --bin tables [--scale F] [--seed N] [table1|table3|table4|table5|baseline-compare|sensitivity|crossover|all]
//! ```
//!
//! `--scale` is the fraction of each Table 5 clip's published shot-change
//! count to synthesize (default 0.25; 1.0 regenerates the full 3,629-cut
//! corpus and takes a few minutes).

use vdb_core::sbd::SbdConfig;
use vdb_eval::ablation::{
    foreground_heavy_corpus, render_fba_ablation, render_model_ablation, run_fba_ablation,
    run_model_ablation, run_thickness_ablation, run_tree_threshold_ablation, run_zoom_ablation,
};
use vdb_eval::corpus::{build_corpus_parallel, CorpusClip, CORPUS_DIMS};
use vdb_eval::experiments::{
    render_baseline_comparison, render_sensitivity, run_baseline_comparison, run_sensitivity_sweep,
    run_table5, run_tolerance_sweep,
};
use vdb_eval::indexperf::{render_crossover, run_crossover};
use vdb_eval::retrieval::{run_table3, run_table4, FIGURE5_SEED};
use vdb_synth::Scale;

struct Args {
    scale: f64,
    seed: u64,
    which: Vec<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.25,
        seed: 1234,
        which: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                args.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale needs a number");
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs an integer");
            }
            other => args.which.push(other.to_string()),
        }
    }
    if args.which.is_empty() {
        args.which.push("all".to_string());
    }
    args
}

fn wants(args: &Args, name: &str) -> bool {
    args.which.iter().any(|w| w == name || w == "all")
}

fn corpus(args: &Args) -> Vec<CorpusClip> {
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    eprintln!(
        "building corpus at scale {} (seed {}) with {workers} workers...",
        args.scale, args.seed
    );
    build_corpus_parallel(Scale::Fraction(args.scale), CORPUS_DIMS, args.seed, workers)
}

fn table1() {
    println!("== Table 1: nearest size-set approximation ==\n");
    let ranges = [
        (1usize, 2usize),
        (3, 8),
        (9, 20),
        (21, 44),
        (45, 92),
        (93, 188),
    ];
    println!("{:<16} {:>14}", "h',b',w' or L'", "h, b, w or L");
    println!("{}", "-".repeat(31));
    for (lo, hi) in ranges {
        let snapped = vdb_core::sizeset::snap(lo);
        assert_eq!(
            snapped,
            vdb_core::sizeset::snap(hi),
            "range must be uniform"
        );
        println!("{:<16} {:>14}", format!("{lo}..={hi}"), snapped);
    }
    println!();
}

fn main() {
    let args = parse_args();
    if wants(&args, "table1") {
        table1();
    }
    if wants(&args, "table3") {
        println!("== Table 3: per-shot feature table of the Figure 5 clip ==\n");
        println!("{}", run_table3(FIGURE5_SEED));
    }
    if wants(&args, "table4") {
        println!("== Table 4: index tables for the two synthetic movies ==\n");
        let exp = run_table4(4004);
        println!("{}", exp.render_index_tables());
    }
    let needs_corpus = [
        "table5",
        "baseline-compare",
        "sensitivity",
        "ablation-fba",
        "tolerance",
        "ablation-thickness",
    ]
    .iter()
    .any(|t| wants(&args, t));
    if needs_corpus {
        let clips = corpus(&args);
        let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
        if wants(&args, "table5") {
            println!("== Table 5: camera-tracking SBD over the 22-clip corpus ==\n");
            let report = run_table5(&clips, SbdConfig::default(), workers);
            println!("{}", report.render());
            println!("By category:\n{}", report.render_by_category());
        }
        if wants(&args, "baseline-compare") {
            println!("== Baseline comparison (the §1/§6 claims) ==\n");
            let rows = run_baseline_comparison(&clips, workers);
            println!("{}", render_baseline_comparison(&rows));
        }
        if wants(&args, "sensitivity") {
            println!("== Threshold sensitivity sweep (the [2] critique) ==\n");
            let rows = run_sensitivity_sweep(&clips, workers);
            println!("{}", render_sensitivity(&rows));
        }
        if wants(&args, "tolerance") {
            println!("== Boundary-matching tolerance sweep ==\n");
            println!(
                "{}",
                run_tolerance_sweep(&clips, SbdConfig::default(), workers)
            );
        }
        if wants(&args, "ablation-thickness") {
            println!("== FBA-thickness ablation (the empirical 10%) ==\n");
            println!("{}", run_thickness_ablation(&clips, workers));
        }
        if wants(&args, "ablation-fba") {
            println!("== FBA-shape ablation, general corpus ==\n");
            let rows = run_fba_ablation(&clips, SbdConfig::default(), workers);
            println!("{}", render_fba_ablation(&rows));
            println!("== FBA-shape ablation, foreground-heavy corpus ==\n");
            let fg = foreground_heavy_corpus(args.seed, 8);
            let rows = run_fba_ablation(&fg, SbdConfig::default(), workers);
            println!("{}", render_fba_ablation(&rows));
        }
    }
    if wants(&args, "ablation-tree") {
        println!("== RELATIONSHIP-threshold ablation (scene-tree shape) ==\n");
        println!("{}", run_tree_threshold_ablation(2025));
    }
    if wants(&args, "ablation-zoom") {
        println!("== Zoom-robustness ablation (shift-only vs multiscale) ==\n");
        println!("{}", run_zoom_ablation(args.seed, 6));
    }
    if wants(&args, "crossover") {
        println!("== Scan-vs-index crossover (bucketed shot index) ==\n");
        let sizes = [1_000, 10_000, 100_000, 500_000];
        let points = run_crossover(&sizes, 9, args.seed);
        println!("{}", render_crossover(&points));
    }
    if wants(&args, "ablation-model") {
        println!("== Similarity-model ablation (basic vs §6 extended) ==\n");
        let exp = run_table4(4004);
        let a = run_model_ablation(&exp);
        println!("{}", render_model_ablation(&a));
    }
}
