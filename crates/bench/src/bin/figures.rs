//! Regenerate the paper's figures (as text) on the synthetic corpus.
//!
//! ```text
//! cargo run -p vdb-bench --release --bin figures [--scale F] [--seed N] [fig4|fig6|fig7|fig8-10|hierarchy|all]
//! ```

use vdb_core::sbd::SbdConfig;
use vdb_eval::corpus::{build_corpus_parallel, CORPUS_DIMS};
use vdb_eval::experiments::run_stage_stats;
use vdb_eval::retrieval::{
    run_figure6, run_figure7, run_hierarchy_comparison, run_table4, FIGURE5_SEED, FIGURE7_SEED,
};
use vdb_synth::Scale;

fn main() {
    let mut scale = 0.25f64;
    let mut seed = 1234u64;
    let mut which: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => scale = it.next().and_then(|v| v.parse().ok()).expect("--scale"),
            "--seed" => seed = it.next().and_then(|v| v.parse().ok()).expect("--seed"),
            other => which.push(other.to_string()),
        }
    }
    if which.is_empty() {
        which.push("all".into());
    }
    let wants = |name: &str| which.iter().any(|w| w == name || w == "all");
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());

    if wants("fig4") {
        println!("== Figure 4: the three-stage cascade, in numbers ==\n");
        let clips = build_corpus_parallel(Scale::Fraction(scale), CORPUS_DIMS, seed, workers);
        let report = run_stage_stats(&clips, SbdConfig::default(), workers);
        println!("{}", report.render());
    }
    if wants("fig6") {
        println!("== Figure 6: scene tree of the ten-shot worked example ==\n");
        let exp = run_figure6(FIGURE5_SEED);
        println!(
            "detected {} shots at boundaries {:?}\n",
            exp.analysis.shots().len(),
            exp.analysis.segmentation.boundaries
        );
        println!("{}", exp.render_tree());
    }
    if wants("fig7") {
        println!("== Figure 7: scene tree of the synthetic 'Friends' segment ==\n");
        let (_, rendered) = run_figure7(FIGURE7_SEED);
        println!("{rendered}");
    }
    if wants("fig8-10") {
        println!("== Figures 8-10: variance-similarity retrieval ==\n");
        let exp = run_table4(4004);
        let outcomes = exp.run_figures_8_to_10();
        println!("{}", exp.render_retrieval(&outcomes));
    }
    if wants("hierarchy") {
        println!("== Browsing-hierarchy comparison (scene tree vs [18]/[22]) ==\n");
        println!("{}", run_hierarchy_comparison(31337));
    }
}
