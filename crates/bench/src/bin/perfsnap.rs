//! `perfsnap` — one-shot performance snapshot of the full stack.
//!
//! Generates a deterministic synthetic corpus, ingests it through
//! [`vdb_store::journal::JournaledDatabase`] (so the analysis pipeline,
//! the codec, and the journal all record into the process-global
//! [`vdb_obs`] registry), runs a mixed range/top-k query workload through
//! the planner-backed shot index, then writes `BENCH_5.json`: frames/s
//! overall and per pipeline stage, cascade stage-hit ratios (the paper's
//! Fig. 4 cost metric), journal append/fsync latency quantiles, the
//! `core.index.*` probe statistics (plan split, probe quantiles,
//! candidates scored — the scan-vs-index crossover in snapshot form), and
//! the full registry dump.
//!
//! With `--baseline <path>` the overall frames/s is compared against a
//! previously checked-in snapshot and the process exits non-zero when it
//! regressed by more than `--max-regress` (default 0.25) — this is the
//! CI perf-trajectory gate.
//!
//! With `--trace-out <path>` the whole run executes under forced trace
//! roots (one per ingest, one per query pair) and the flight recorder is
//! drained to `<path>` as chrome://tracing JSON — open it in
//! `chrome://tracing` or Perfetto to see the span tree of every ingest
//! and probe.
//!
//! With `--simd <level>` the ingest pipeline runs its extraction kernels
//! at an explicit SIMD level (`auto`, `scalar`, `sse2`, `avx2`, `neon`);
//! the snapshot's `simd` block always records both the configured level
//! and what `auto` resolved to on the host, so a checked-in snapshot is
//! attributable to an instruction set.
//!
//! With `--simd-compare <path>` the run finishes with a scalar-vs-SIMD
//! extraction shoot-out over the same corpus — every available level
//! extracts every frame, outputs are cross-checked bit-identical, and the
//! per-level frames/s land in `<path>` as a small JSON artifact (the CI
//! perf-matrix upload).
//!
//! ```text
//! perfsnap [--out BENCH_5.json] [--baseline BENCH_5.json]
//!          [--max-regress 0.25] [--clips 6] [--shots 10] [--seed 5]
//!          [--trace-out BENCH_TRACE.json] [--simd LEVEL]
//!          [--simd-compare SIMD_COMPARE.json]
//! ```

use std::fmt::Write as _;
use std::time::Instant;
use vdb_core::analyzer::AnalyzerConfig;
use vdb_core::simd::SimdLevel;
use vdb_obs::Snapshot;
use vdb_store::journal::JournaledDatabase;
use vdb_synth::{build_script, generate, Genre};

struct Args {
    out: String,
    baseline: Option<String>,
    max_regress: f64,
    clips: usize,
    shots: usize,
    seed: u64,
    trace_out: Option<String>,
    simd: SimdLevel,
    simd_compare: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        out: "BENCH_5.json".to_string(),
        baseline: None,
        max_regress: 0.25,
        clips: 12,
        shots: 30,
        seed: 5,
        trace_out: None,
        simd: SimdLevel::Auto,
        simd_compare: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut grab = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match arg.as_str() {
            "--out" => args.out = grab("--out"),
            "--baseline" => args.baseline = Some(grab("--baseline")),
            "--max-regress" => {
                args.max_regress = grab("--max-regress").parse().expect("--max-regress: float")
            }
            "--clips" => args.clips = grab("--clips").parse().expect("--clips: integer"),
            "--shots" => args.shots = grab("--shots").parse().expect("--shots: integer"),
            "--seed" => args.seed = grab("--seed").parse().expect("--seed: integer"),
            "--trace-out" => args.trace_out = Some(grab("--trace-out")),
            "--simd" => {
                let level: SimdLevel = grab("--simd")
                    .parse()
                    .unwrap_or_else(|e| panic!("--simd: {e}"));
                // Fail loudly now, not mid-ingest.
                level
                    .try_resolve()
                    .unwrap_or_else(|e| panic!("--simd: {e}"));
                args.simd = level;
            }
            "--simd-compare" => args.simd_compare = Some(grab("--simd-compare")),
            other => panic!("unknown argument '{other}'"),
        }
    }
    args
}

/// The genres cycled over when building the corpus: a spread of cutting
/// rates and visual styles so the cascade sees realistic stage mixes.
const GENRES: [Genre; 4] = [Genre::Sitcom, Genre::TalkShow, Genre::Drama, Genre::Cartoon];

fn fps(frames: u64, seconds: f64) -> f64 {
    if seconds > 0.0 {
        frames as f64 / seconds
    } else {
        0.0
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den > 0 {
        num as f64 / den as f64
    } else {
        0.0
    }
}

fn push_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let _ = write!(out, "{x:.3}");
    } else {
        out.push('0');
    }
}

fn stage_seconds(snap: &Snapshot, name: &str) -> f64 {
    snap.histogram(name).map_or(0.0, |h| h.seconds())
}

fn main() {
    let args = parse_args();

    // --- Corpus generation (outside the timed window). ---
    let mut videos = Vec::with_capacity(args.clips);
    let mut total_frames = 0u64;
    for i in 0..args.clips {
        let genre = GENRES[i % GENRES.len()];
        let script = build_script(genre, args.shots, None, (64, 48), args.seed + i as u64);
        let clip = generate(&script);
        total_frames += clip.video.len() as u64;
        videos.push((format!("perfsnap-{i:03}"), clip.video));
    }
    eprintln!(
        "perfsnap: corpus ready: {} clips, {} frames (seed {})",
        args.clips, total_frames, args.seed
    );

    // --- Timed ingest through the journaled store. ---
    let dir = std::env::temp_dir().join(format!("vdb-perfsnap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let journal_path = dir.join("perfsnap.vdbj");
    // With --trace-out, each ingest and each query pair runs under its
    // own forced trace root; the spans land in the process-wide flight
    // recorder and are drained to chrome://tracing JSON at the end. The
    // per-span cost is a handful of atomics — noise next to the 25%
    // regression margin the gate allows.
    let tracer = vdb_obs::global_tracer();
    let trace_root = || {
        if args.trace_out.is_some() {
            tracer.trace_root_forced()
        } else {
            vdb_obs::TraceContext::disabled()
        }
    };
    let analyzer_config = AnalyzerConfig {
        simd: args.simd,
        ..AnalyzerConfig::default()
    };
    let resolved_isa = args.simd.try_resolve().expect("checked at parse time");
    eprintln!(
        "perfsnap: simd level {} (resolves to {resolved_isa})",
        args.simd
    );
    let wall = Instant::now();
    let mut db = JournaledDatabase::open(&journal_path, analyzer_config).expect("open journal");
    for (name, video) in &videos {
        db.ingest_traced(name.clone(), video, vec![], vec![], &trace_root())
            .expect("ingest clip");
    }
    let wall_seconds = wall.elapsed().as_secs_f64();

    // --- Query workload over the planner-backed shot index. ---
    use vdb_core::index::VarianceQuery;
    let index_entries = db.db().index().len();
    let query_wall = Instant::now();
    let mut answers = 0usize;
    for i in 0..64u32 {
        let q = VarianceQuery::new(f64::from(i % 16) * 4.0, f64::from(i % 12) * 3.0)
            .with_tolerances(0.5 + f64::from(i % 4) * 0.5, 2.0);
        let root = trace_root();
        answers += db.db().query_traced(&q, &root).len();
        answers += db.db().query_topk_traced(&q, 10, &root).len();
    }
    let query_seconds = query_wall.elapsed().as_secs_f64();
    eprintln!(
        "perfsnap: query workload: 128 probes over {index_entries} indexed shots, \
         {answers} answers in {query_seconds:.3}s"
    );
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);

    // --- Snapshot the global registry and derive the report. ---
    let snap = vdb_obs::global().snapshot();
    let frames = snap.counter("core.pipeline.frames").unwrap_or(0);
    let clips = snap.counter("core.pipeline.clips").unwrap_or(0);
    // Frame *pairs* are what the cascade classifies (the first frame of
    // each clip has no predecessor).
    let pairs = frames.saturating_sub(clips);
    let overall_fps = fps(frames, wall_seconds);

    let mut json = String::from("{\n  \"schema\": \"vdb-bench-5/v1\",\n");
    let _ = writeln!(
        json,
        "  \"corpus\": {{\"clips\": {}, \"shots_per_clip\": {}, \"seed\": {}, \"frames\": {}}},",
        args.clips, args.shots, args.seed, frames
    );
    // The configured knob and the instruction set it actually ran as —
    // `auto` is made explicit so snapshots are attributable to a host ISA.
    let _ = write!(
        json,
        "  \"simd\": {{\"configured\": \"{}\", \"resolved\": \"{resolved_isa}\", \"available\": [",
        args.simd
    );
    for (i, level) in SimdLevel::all_available().into_iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        let _ = write!(json, "\"{level}\"");
    }
    json.push_str("]},\n");
    json.push_str("  \"wall_seconds\": ");
    push_f64(&mut json, wall_seconds);
    json.push_str(",\n  \"frames_per_sec\": {");
    json.push_str("\"overall\": ");
    push_f64(&mut json, overall_fps);
    for (key, metric) in [
        ("extract", "core.pipeline.extract_us"),
        ("cascade", "core.pipeline.cascade_us"),
        ("assemble", "core.pipeline.assemble_us"),
        ("scenetree", "core.pipeline.scenetree_us"),
        ("index", "core.pipeline.index_us"),
    ] {
        let _ = write!(json, ", \"{key}\": ");
        push_f64(&mut json, fps(frames, stage_seconds(&snap, metric)));
    }
    json.push_str("},\n  \"cascade_hit_ratio\": {");
    for (i, (key, metric)) in [
        ("sign_same", "core.cascade.sign_same"),
        ("signature_same", "core.cascade.signature_same"),
        ("tracking_same", "core.cascade.tracking_same"),
        ("boundaries", "core.cascade.boundaries"),
    ]
    .into_iter()
    .enumerate()
    {
        if i > 0 {
            json.push_str(", ");
        }
        let _ = write!(json, "\"{key}\": ");
        push_f64(&mut json, ratio(snap.counter(metric).unwrap_or(0), pairs));
    }
    json.push_str("},\n  \"journal\": {");
    let appends = snap.counter("store.journal.appends").unwrap_or(0);
    let _ = write!(json, "\"appends\": {appends}");
    for (key, metric) in [
        ("append", "store.journal.append_us"),
        ("fsync", "store.journal.fsync_us"),
    ] {
        let (p50, p99) = snap
            .histogram(metric)
            .map_or((0, 0), |h| (h.p50_us(), h.p99_us()));
        let _ = write!(json, ", \"{key}_p50_us\": {p50}, \"{key}_p99_us\": {p99}");
    }
    json.push_str("},\n  \"index\": {");
    let _ = write!(json, "\"entries\": {index_entries}, \"queries\": 128");
    json.push_str(", \"query_seconds\": ");
    push_f64(&mut json, query_seconds);
    for (key, metric) in [
        ("plan_bucket", "core.index.plan_bucket"),
        ("plan_scan", "core.index.plan_scan"),
        ("candidates_scored", "core.index.candidates_scored"),
        ("buckets_touched", "core.index.buckets_touched"),
    ] {
        let _ = write!(json, ", \"{key}\": {}", snap.counter(metric).unwrap_or(0));
    }
    for (key, metric) in [
        ("build", "core.index.build_us"),
        ("probe", "core.index.probe_us"),
    ] {
        let (p50, p99) = snap
            .histogram(metric)
            .map_or((0, 0), |h| (h.p50_us(), h.p99_us()));
        let _ = write!(json, ", \"{key}_p50_us\": {p50}, \"{key}_p99_us\": {p99}");
    }
    json.push_str("},\n  \"registry\": ");
    json.push_str(&vdb_obs::global().to_json());
    json.push_str("\n}\n");

    std::fs::write(&args.out, &json).expect("write snapshot");
    eprintln!(
        "perfsnap: {:.0} frames/s overall over {} frames; wrote {}",
        overall_fps, frames, args.out
    );

    // --- Trace artifact. ---
    if let Some(path) = &args.trace_out {
        let events = tracer.recorder().snapshot();
        let chrome = vdb_obs::trace::to_chrome_json(&events);
        std::fs::write(path, &chrome).expect("write trace artifact");
        eprintln!(
            "perfsnap: wrote {} span events to {path} (chrome://tracing format)",
            events.len()
        );
    }

    // --- Scalar-vs-SIMD extraction shoot-out. ---
    if let Some(path) = &args.simd_compare {
        let artifact = simd_compare(&videos);
        std::fs::write(path, &artifact).expect("write simd comparison artifact");
        eprintln!("perfsnap: wrote scalar-vs-SIMD comparison to {path}");
    }

    // --- Regression gate. ---
    if let Some(path) = &args.baseline {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        let baseline_fps = baseline_overall_fps(&text)
            .unwrap_or_else(|| panic!("baseline {path} has no frames_per_sec.overall"));
        let floor = baseline_fps * (1.0 - args.max_regress);
        if overall_fps < floor {
            eprintln!(
                "perfsnap: REGRESSION: {overall_fps:.0} frames/s < floor {floor:.0} \
                 (baseline {baseline_fps:.0}, max regress {:.0}%)",
                args.max_regress * 100.0
            );
            std::process::exit(1);
        }
        eprintln!(
            "perfsnap: within budget: {overall_fps:.0} frames/s vs baseline {baseline_fps:.0} \
             (floor {floor:.0})"
        );
    }
}

/// Run extraction-only over the corpus once per available SIMD level,
/// cross-check the outputs bit-identical, and render the per-level
/// frames/s as a small JSON artifact.
fn simd_compare(videos: &[(String, vdb_core::frame::Video)]) -> String {
    use vdb_core::features::{FeatureExtractor, FrameFeatures, ScratchBuffers};

    let levels = SimdLevel::all_available();
    let total: u64 = videos.iter().map(|(_, v)| v.len() as u64).sum();
    let mut reference: Option<Vec<FrameFeatures>> = None;
    let mut rows: Vec<(SimdLevel, f64)> = Vec::with_capacity(levels.len());
    for &level in &levels {
        let mut scratch = ScratchBuffers::default();
        let mut features = Vec::with_capacity(total as usize);
        let wall = Instant::now();
        for (_, video) in videos {
            let (w, h) = video.dims();
            let ex = FeatureExtractor::with_simd(w, h, level).expect("level is available");
            for frame in video.frames() {
                features.push(ex.extract_with(frame, &mut scratch).expect("extract"));
            }
        }
        let level_fps = fps(total, wall.elapsed().as_secs_f64());
        eprintln!("perfsnap: simd-compare {level}: {level_fps:.0} frames/s extraction");
        match &reference {
            None => reference = Some(features),
            Some(expected) => assert_eq!(
                &features, expected,
                "SIMD level {level} diverged from scalar output"
            ),
        }
        rows.push((level, level_fps));
    }
    let scalar_fps = rows
        .iter()
        .find(|(l, _)| *l == SimdLevel::Scalar)
        .map_or(0.0, |&(_, f)| f);
    let mut json = String::from("{\n  \"schema\": \"vdb-simd-compare/v1\",\n");
    let _ = write!(
        json,
        "  \"resolved_auto\": \"{}\",\n  \"frames\": {total},\n  \"extract_frames_per_sec\": {{",
        SimdLevel::Auto.resolve()
    );
    for (i, (level, level_fps)) in rows.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        let _ = write!(json, "\"{level}\": ");
        push_f64(&mut json, *level_fps);
    }
    json.push_str("},\n  \"speedup_vs_scalar\": {");
    for (i, (level, level_fps)) in rows.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        let _ = write!(json, "\"{level}\": ");
        push_f64(
            &mut json,
            if scalar_fps > 0.0 {
                level_fps / scalar_fps
            } else {
                0.0
            },
        );
    }
    json.push_str("}\n}\n");
    json
}

/// Pull `frames_per_sec.overall` out of a previous snapshot.
fn baseline_overall_fps(text: &str) -> Option<f64> {
    let root = serde_json::parse(text).ok()?;
    let fps = field(&root, "frames_per_sec")?;
    match field(fps, "overall")? {
        serde::Value::Float(x) => Some(*x),
        serde::Value::Int(n) => Some(*n as f64),
        _ => None,
    }
}

fn field<'a>(value: &'a serde::Value, name: &str) -> Option<&'a serde::Value> {
    match value {
        serde::Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
        _ => None,
    }
}
