//! Shot-boundary-detection benchmarks: the Figure 4 cascade.
//!
//! * `decide_pair/*` — per-pair cost of each cascade outcome: a stage-1
//!   accept is hundreds of times cheaper than a stage-3 track, which is the
//!   whole point of the quick-elimination design;
//! * `segment/*` — end-to-end frames/second over a genre clip;
//! * `track/shift_search` — the stage-3 shift-and-match in isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use vdb_core::features::extract_features;
use vdb_core::sbd::CameraTrackingDetector;
use vdb_synth::script::generate;
use vdb_synth::{build_script, Genre};

fn bench_decide_pair(c: &mut Criterion) {
    // Build feature pairs that exercise each cascade stage.
    let script = build_script(Genre::Movie, 12, Some(10.0), (80, 60), 99);
    let g = generate(&script);
    let feats = extract_features(&g.video).unwrap();
    let det = CameraTrackingDetector::new();
    let mut by_stage: std::collections::HashMap<String, (usize, usize)> = Default::default();
    for i in 1..feats.len() {
        let d = det.decide_pair(&feats[i - 1], &feats[i]);
        by_stage.entry(format!("{d:?}")).or_insert((i - 1, i));
    }
    let mut group = c.benchmark_group("sbd/decide_pair");
    for (stage, (i, j)) in by_stage {
        group.bench_with_input(BenchmarkId::from_parameter(stage), &(i, j), |b, &(i, j)| {
            b.iter(|| det.decide_pair(black_box(&feats[i]), black_box(&feats[j])));
        });
    }
    group.finish();
}

fn bench_segment(c: &mut Criterion) {
    let mut group = c.benchmark_group("sbd/segment");
    group.sample_size(10);
    for genre in [Genre::Sitcom, Genre::Sports, Genre::Commercials] {
        let script = build_script(genre, 20, None, (80, 60), 7);
        let g = generate(&script);
        let frames = g.video.len() as u64;
        group.throughput(Throughput::Elements(frames));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{genre}")),
            &g.video,
            |b, video| {
                let det = CameraTrackingDetector::new();
                b.iter(|| det.segment_video(black_box(video)).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_track(c: &mut Criterion) {
    let script = build_script(Genre::Movie, 4, Some(8.0), (160, 120), 3);
    let g = generate(&script);
    let feats = extract_features(&g.video).unwrap();
    let (a, b) = (&feats[0], &feats[feats.len() - 1]);
    let n = a.signature_ba.len();
    let target = (0.45 * n as f64).ceil() as usize;
    let mut group = c.benchmark_group("sbd/track");
    group.bench_function("shift_search_full", |bch| {
        bch.iter(|| black_box(&a.signature_ba).track(black_box(&b.signature_ba), 14, n));
    });
    group.bench_function("shift_search_quarter", |bch| {
        bch.iter(|| black_box(&a.signature_ba).track(black_box(&b.signature_ba), 14, n / 4));
    });
    // The §6 speed-up ablation: early exit vs exhaustive, on a same-shot
    // pair (early exit pays off) and the cross-cut pair above (pruning
    // pays off).
    let (s0, s1) = (&feats[0], &feats[1]);
    group.bench_function("early_exit_same_shot_pair", |bch| {
        bch.iter(|| {
            black_box(&s0.signature_ba).track_until(black_box(&s1.signature_ba), 14, n, target)
        });
    });
    group.bench_function("early_exit_cut_pair", |bch| {
        bch.iter(|| {
            black_box(&a.signature_ba).track_until(black_box(&b.signature_ba), 14, n, target)
        });
    });
    group.finish();
}

fn bench_segment_early_exit_ablation(c: &mut Criterion) {
    let script = build_script(Genre::Movie, 16, Some(9.0), (80, 60), 11);
    let g = generate(&script);
    let feats = extract_features(&g.video).unwrap();
    let mut group = c.benchmark_group("sbd/early_exit_ablation");
    group.sample_size(10);
    for (name, early) in [("early_exit", true), ("exhaustive", false)] {
        let det = CameraTrackingDetector::with_config(vdb_core::sbd::SbdConfig {
            early_exit: early,
            ..vdb_core::sbd::SbdConfig::default()
        });
        group.bench_function(name, |b| {
            b.iter(|| det.segment_features(black_box(&feats)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_decide_pair,
    bench_segment,
    bench_track,
    bench_segment_early_exit_ablation
);
criterion_main!(benches);
