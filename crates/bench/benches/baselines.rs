//! Detector throughput comparison: camera tracking vs the literature
//! baselines, frames/second over one genre clip. Accuracy lives in the
//! `tables` binary (`baseline-compare`); this bench isolates cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use vdb_baselines::detector::ShotDetector;
use vdb_baselines::{CameraTracking, EcrDetector, HistogramDetector, PixelwiseDetector};
use vdb_synth::script::generate;
use vdb_synth::{build_script, Genre};

fn bench_detectors(c: &mut Criterion) {
    let script = build_script(Genre::Movie, 14, Some(9.0), (80, 60), 5);
    let g = generate(&script);
    let frames = g.video.len() as u64;
    let detectors: Vec<Box<dyn ShotDetector>> = vec![
        Box::new(CameraTracking::new()),
        Box::new(HistogramDetector::default()),
        Box::new(EcrDetector::default()),
        Box::new(PixelwiseDetector::default()),
    ];
    let mut group = c.benchmark_group("detectors/throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(frames));
    for d in detectors {
        group.bench_with_input(BenchmarkId::from_parameter(d.name()), &g.video, |b, v| {
            b.iter(|| black_box(d.detect(black_box(v))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_detectors);
criterion_main!(benches);
