//! Extraction-kernel microbenchmarks: scalar vs fused vs each SIMD level.
//!
//! Three tiers, mirroring the structure of the hot path:
//!
//! * `gather` — the crop kernel (index-table gather), one shape per area;
//!   always scalar (3-byte pixels defeat vector gathers), benched to keep
//!   its share of the budget visible.
//! * `reduce_rows5` — the vertical 5-tap kernel at every available
//!   instruction set, on the real TBA/FOA row widths.
//! * `frame` — the full per-frame extraction: the unfused crop-then-reduce
//!   composition as the baseline, then the fused pass at every available
//!   SIMD level (`fused-scalar` isolates the fusion win from the SIMD win).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use vdb_core::features::{FeatureExtractor, ScratchBuffers};
use vdb_core::frame::FrameBuf;
use vdb_core::geometry::AreaLayout;
use vdb_core::kernels::{gather_pixels, reduce_rows5};
use vdb_core::pixel::Rgb;
use vdb_core::pyramid::{reduce_grid_to_signature, reduce_line_to_sign};
use vdb_core::simd::{ResolvedIsa, SimdLevel};

fn test_frame(w: u32, h: u32) -> FrameBuf {
    FrameBuf::from_fn(w, h, |x, y| {
        Rgb::new(
            ((x * 3 + y * 17) % 253) as u8,
            ((x * 11 + y * 5) % 251) as u8,
            ((x + y * 23) % 241) as u8,
        )
    })
}

fn bench_gather(c: &mut Criterion) {
    let mut group = c.benchmark_group("extract/gather");
    for (w, h) in [(80u32, 60u32), (160, 120)] {
        let frame = test_frame(w, h);
        let layout = AreaLayout::for_frame(w, h).unwrap();
        for (area, table, cols) in [
            ("tba", layout.tba_index_table(), layout.l),
            ("foa", layout.foa_index_table(), layout.b),
        ] {
            let mut out = vec![Rgb::BLACK; cols];
            group.throughput(Throughput::Elements(table.len() as u64));
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{w}x{h}/{area}")),
                &table,
                |b, table| {
                    b.iter(|| {
                        // One row at a time, like the fused pass does.
                        for row in table.chunks_exact(cols) {
                            gather_pixels(black_box(frame.pixels()), row, &mut out);
                        }
                        black_box(&out);
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_reduce_rows5(c: &mut Criterion) {
    let mut group = c.benchmark_group("extract/reduce_rows5");
    // Byte widths of the real signature rows: 125 px (80x60 frames) and
    // 253 px (160x120) at 3 bytes/pixel.
    for n in [375usize, 759] {
        let rows: Vec<Vec<u8>> = (0..5)
            .map(|r| (0..n).map(|i| ((i * 7 + r * 31) % 256) as u8).collect())
            .collect();
        let mut out = vec![0u8; n];
        for isa in ResolvedIsa::available_levels() {
            group.throughput(Throughput::Bytes(n as u64));
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{n}B/{isa}")),
                &isa,
                |b, &isa| {
                    b.iter(|| {
                        let window: [&[u8]; 5] = std::array::from_fn(|k| rows[k].as_slice());
                        reduce_rows5(isa, black_box(window), &mut out);
                        black_box(&out);
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_frame(c: &mut Criterion) {
    let mut group = c.benchmark_group("extract/frame");
    for (w, h) in [(80u32, 60u32), (160, 120)] {
        let frame = test_frame(w, h);
        let pixels = u64::from(w) * u64::from(h);
        let layout = AreaLayout::for_frame(w, h).unwrap();

        // Baseline: the unfused crop-then-reduce composition.
        group.throughput(Throughput::Elements(pixels));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{w}x{h}/composed-scalar")),
            &frame,
            |b, frame| {
                b.iter(|| {
                    let tba = layout.extract_tba(black_box(frame));
                    let sig = reduce_grid_to_signature(&tba).unwrap();
                    let sign_ba = reduce_line_to_sign(&sig).unwrap();
                    let foa = layout.extract_foa(frame);
                    let sig_oa = reduce_grid_to_signature(&foa).unwrap();
                    let sign_oa = reduce_line_to_sign(&sig_oa).unwrap();
                    black_box((sign_ba, sign_oa, sig));
                });
            },
        );

        // The fused pass at every level; "fused-scalar" vs
        // "composed-scalar" isolates the fusion win from the SIMD win.
        for level in SimdLevel::all_available() {
            let ex = FeatureExtractor::with_simd(w, h, level).unwrap();
            let mut scratch = ScratchBuffers::default();
            group.throughput(Throughput::Elements(pixels));
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{w}x{h}/fused-{level}")),
                &frame,
                |b, frame| {
                    b.iter(|| ex.extract_with(black_box(frame), &mut scratch).unwrap());
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_gather, bench_reduce_rows5, bench_frame);
criterion_main!(benches);
