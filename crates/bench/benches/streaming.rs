//! Batch vs. streaming vs. parallel analysis throughput on one synthetic
//! clip, in frames/second.
//!
//! All three entry points drive the same `AnalysisEngine`, so the outputs
//! are bit-identical (asserted once up front); what differs is the driving
//! pattern and its overhead:
//!
//! * `batch` — `VideoAnalyzer::analyze`: one engine per call, whole video
//!   at once (the pre-refactor serial baseline's shape);
//! * `engine` — a warm, reused `AnalysisEngine`: the scratch arena is
//!   allocated once outside the timing loop, isolating the steady-state
//!   cost the store's ingest path pays per clip;
//! * `streaming/push` — frame-at-a-time pushes, the live-capture pattern;
//! * `streaming/chunks` — `push_frames` in 30-frame batches;
//! * `parallel` — the engine's sharded extraction front-end with 2/4
//!   workers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use vdb_core::analyzer::{AnalyzerConfig, VideoAnalyzer};
use vdb_core::parallel::Parallelism;
use vdb_core::pipeline::AnalysisEngine;
use vdb_core::streaming::StreamingAnalyzer;
use vdb_synth::script::generate;
use vdb_synth::{build_script, Genre};

fn bench_streaming(c: &mut Criterion) {
    let script = build_script(Genre::Sitcom, 16, Some(9.0), (160, 120), 555);
    let video = generate(&script).video;
    let frames = video.frames();

    // The three paths must agree before their speed is worth comparing.
    let reference = VideoAnalyzer::new().analyze(&video).unwrap();
    let mut check = StreamingAnalyzer::default();
    check.push_frames(frames).unwrap();
    assert_eq!(check.finish().unwrap(), reference);

    let mut group = c.benchmark_group("streaming");
    group.sample_size(10);
    group.throughput(Throughput::Elements(frames.len() as u64));

    group.bench_function("batch", |b| {
        let analyzer = VideoAnalyzer::new();
        b.iter(|| analyzer.analyze(black_box(&video)).unwrap());
    });

    group.bench_function("engine", |b| {
        let mut engine = AnalysisEngine::default();
        engine.analyze(&video).unwrap(); // warm the scratch arena
        b.iter(|| engine.analyze(black_box(&video)).unwrap());
    });

    group.bench_function("streaming/push", |b| {
        b.iter(|| {
            let mut s = StreamingAnalyzer::default();
            for f in black_box(frames) {
                s.push(f).unwrap();
            }
            s.finish().unwrap()
        });
    });

    group.bench_function("streaming/chunks", |b| {
        b.iter(|| {
            let mut s = StreamingAnalyzer::default();
            for chunk in black_box(frames).chunks(30) {
                s.push_frames(chunk).unwrap();
            }
            s.finish().unwrap()
        });
    });

    for threads in [2usize, 4] {
        let cfg = AnalyzerConfig {
            parallelism: Parallelism::Threads(threads),
            ..AnalyzerConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("parallel", threads), &cfg, |b, &cfg| {
            b.iter(|| {
                let mut s = StreamingAnalyzer::new(cfg);
                s.push_frames(black_box(frames)).unwrap();
                s.finish().unwrap()
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
