//! Variance-index benchmarks: the "cost-effective indexing" claim (§4).
//!
//! * `query/*` — sorted-index range query vs linear scan vs quantized grid
//!   over growing table sizes: the ablation for the index-structure choice;
//! * `build` — index construction cost;
//! * `insert` — incremental ingest cost;
//! * `bucket/*` — the planner-backed [`ShotIndex`]: build, range probe vs
//!   forced scan, and top-k probe vs full ranking. The top-k gap is the
//!   sublinear-index claim in miniature (the 1M pin lives in the
//!   `index_scale` integration test).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use vdb_core::index::{
    BucketParams, IndexEntry, QuantizedIndex, ShotIndex, ShotKey, VarianceIndex, VarianceQuery,
};

fn synthetic_entries(n: usize) -> Vec<IndexEntry> {
    (0..n)
        .map(|i| {
            let x = i as f64;
            IndexEntry {
                key: ShotKey {
                    video: (i % 97) as u64,
                    shot: i as u32,
                },
                var_ba: (x * 0.613) % 64.0,
                var_oa: (x * 0.271) % 48.0,
            }
        })
        .collect()
}

fn queries() -> Vec<VarianceQuery> {
    (0..32)
        .map(|i| VarianceQuery::new(f64::from(i) * 2.0 % 64.0, f64::from(i) * 1.4 % 48.0))
        .collect()
}

fn bench_query(c: &mut Criterion) {
    let qs = queries();
    for n in [1_000usize, 10_000, 100_000] {
        let entries = synthetic_entries(n);
        let sorted = VarianceIndex::build(entries.clone());
        let quantized = QuantizedIndex::build(&entries, 1.0, 1.0);
        let mut group = c.benchmark_group(format!("index/query/n={n}"));
        group.throughput(Throughput::Elements(qs.len() as u64));
        group.bench_function("sorted", |b| {
            b.iter(|| {
                for q in &qs {
                    black_box(sorted.query(black_box(q)));
                }
            });
        });
        group.bench_function("scan", |b| {
            b.iter(|| {
                for q in &qs {
                    black_box(sorted.query_scan(black_box(q)));
                }
            });
        });
        group.bench_function("quantized", |b| {
            b.iter(|| {
                for q in &qs {
                    black_box(quantized.query(black_box(q)));
                }
            });
        });
        group.finish();
    }
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index/build");
    for n in [1_000usize, 100_000] {
        let entries = synthetic_entries(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &entries, |b, entries| {
            b.iter(|| VarianceIndex::build(black_box(entries.clone())));
        });
    }
    group.finish();
}

fn bench_insert(c: &mut Criterion) {
    let base = synthetic_entries(10_000);
    c.bench_function("index/insert_into_10k", |b| {
        let idx = VarianceIndex::build(base.clone());
        let fresh = IndexEntry {
            key: ShotKey {
                video: 999,
                shot: 0,
            },
            var_ba: 31.0,
            var_oa: 7.0,
        };
        b.iter_batched(
            || idx.clone(),
            |mut idx| idx.insert(black_box(fresh)),
            criterion::BatchSize::LargeInput,
        );
    });
}

fn bench_extended(c: &mut Criterion) {
    use vdb_core::index::{ExtendedEntry, ExtendedIndex, ExtendedQuery};
    use vdb_core::variance::ExtendedShotFeature;
    let entries: Vec<ExtendedEntry> = (0..10_000)
        .map(|i| {
            let v = f64::from(i);
            ExtendedEntry {
                key: ShotKey {
                    video: (i % 31) as u64,
                    shot: i as u32,
                },
                feature: ExtendedShotFeature {
                    var_ba: [(v * 0.61) % 64.0, (v * 0.37) % 64.0, (v * 0.19) % 64.0],
                    var_oa: [(v * 0.27) % 48.0, (v * 0.47) % 48.0, (v * 0.09) % 48.0],
                },
            }
        })
        .collect();
    let idx = ExtendedIndex::build(entries.clone());
    let queries: Vec<ExtendedQuery> = (0..32usize)
        .map(|i| ExtendedQuery::by_example(entries[i * 311].feature))
        .collect();
    let mut group = c.benchmark_group("index/extended_query/n=10000");
    group.throughput(Throughput::Elements(queries.len() as u64));
    group.bench_function("per_channel", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(idx.query(black_box(q)));
            }
        });
    });
    group.finish();
}

fn bench_bucket(c: &mut Criterion) {
    let qs = queries();
    for n in [1_000usize, 10_000, 100_000] {
        let entries = synthetic_entries(n);
        let idx = ShotIndex::from_entries(entries.clone(), BucketParams::default());
        let mut group = c.benchmark_group(format!("index/bucket/n={n}"));
        group.throughput(Throughput::Elements(qs.len() as u64));
        group.bench_function("range_probe", |b| {
            b.iter(|| {
                for q in &qs {
                    black_box(idx.query(black_box(q)));
                }
            });
        });
        group.bench_function("range_scan", |b| {
            b.iter(|| {
                for q in &qs {
                    black_box(idx.query_scan(black_box(q)));
                }
            });
        });
        group.bench_function("topk_probe", |b| {
            b.iter(|| {
                for q in &qs {
                    black_box(idx.query_topk(black_box(q), 10));
                }
            });
        });
        group.bench_function("topk_scan", |b| {
            b.iter(|| {
                for q in &qs {
                    black_box(idx.query_topk_scan(black_box(q), 10));
                }
            });
        });
        group.finish();
    }

    let mut group = c.benchmark_group("index/bucket/build");
    for n in [1_000usize, 100_000] {
        let entries = synthetic_entries(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &entries, |b, entries| {
            b.iter(|| ShotIndex::from_entries(black_box(entries.clone()), BucketParams::default()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_query,
    bench_build,
    bench_insert,
    bench_extended,
    bench_bucket
);
criterion_main!(benches);
