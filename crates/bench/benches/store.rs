//! Database-layer benchmarks: ingest, query, and persistence round-trip.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use vdb_core::index::VarianceQuery;
use vdb_store::VideoDatabase;
use vdb_synth::script::generate;
use vdb_synth::{build_script, Genre};

fn sample_video(seed: u64) -> vdb_core::frame::Video {
    generate(&build_script(Genre::News, 8, Some(8.0), (80, 60), seed)).video
}

fn populated_db(videos: usize) -> VideoDatabase {
    let mut db = VideoDatabase::new();
    for i in 0..videos {
        db.ingest(format!("clip-{i}"), &sample_video(i as u64), vec![], vec![])
            .unwrap();
    }
    db
}

fn bench_ingest(c: &mut Criterion) {
    let video = sample_video(42);
    let mut group = c.benchmark_group("store/ingest");
    group.sample_size(10);
    group.throughput(Throughput::Elements(video.len() as u64));
    group.bench_function("one_clip", |b| {
        b.iter_batched(
            VideoDatabase::new,
            |mut db| {
                db.ingest("clip", black_box(&video), vec![], vec![])
                    .unwrap()
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let db = populated_db(12);
    c.bench_function("store/query_scene_nodes", |b| {
        b.iter(|| {
            for i in 0..16 {
                let q = VarianceQuery::new(f64::from(i) * 3.0, f64::from(i));
                black_box(db.query(black_box(&q)));
            }
        });
    });
}

fn bench_persistence(c: &mut Criterion) {
    let db = populated_db(6);
    let dir = std::env::temp_dir().join(format!("vdb-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bench.vdbs");
    let mut group = c.benchmark_group("store/persistence");
    group.sample_size(10);
    group.bench_function("save", |b| {
        b.iter(|| db.save(black_box(&path)).unwrap());
    });
    db.save(&path).unwrap();
    group.bench_function("load", |b| {
        b.iter(|| {
            VideoDatabase::load(
                black_box(&path),
                vdb_core::analyzer::AnalyzerConfig::default(),
            )
            .unwrap()
        });
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_ingest, bench_query, bench_persistence);
criterion_main!(benches);
