//! Pyramid/feature-extraction benchmarks: the §2.1 `O(m)` complexity claim.
//!
//! `reduce_line` is timed across size-set lengths; linear growth in `m`
//! confirms the claim. `extract_frame` times the full per-frame feature
//! extraction (TBA + FOA carve-out, both pyramids) at the paper's 160×120
//! and the corpus's 80×60 frame sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use vdb_core::features::FeatureExtractor;
use vdb_core::frame::FrameBuf;
use vdb_core::geometry::PixelGrid;
use vdb_core::pixel::Rgb;
use vdb_core::pyramid::{reduce_grid_to_signature, reduce_line_to_sign};
use vdb_core::sizeset::size_set;

fn bench_reduce_line(c: &mut Criterion) {
    let mut group = c.benchmark_group("pyramid/reduce_line");
    for j in 3..=8u32 {
        let n = size_set(j);
        let line: Vec<Rgb> = (0..n).map(|i| Rgb::gray((i * 13 % 251) as u8)).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &line, |b, line| {
            b.iter(|| reduce_line_to_sign(black_box(line)).unwrap());
        });
    }
    group.finish();
}

fn bench_grid_signature(c: &mut Criterion) {
    let mut group = c.benchmark_group("pyramid/grid_to_signature");
    // The real TBA shapes: 5x125 (80x60 frames) and 13x253 (160x120 frames).
    for (rows, cols) in [(5usize, 125usize), (13, 253)] {
        let grid = PixelGrid::from_fn(rows, cols, |r, q| Rgb::gray(((r * 31 + q * 7) % 256) as u8));
        group.throughput(Throughput::Elements((rows * cols) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{rows}x{cols}")),
            &grid,
            |b, grid| {
                b.iter(|| reduce_grid_to_signature(black_box(grid)).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_extract_frame(c: &mut Criterion) {
    let mut group = c.benchmark_group("pyramid/extract_frame");
    for (w, h) in [(80u32, 60u32), (160, 120)] {
        let frame = FrameBuf::from_fn(w, h, |x, y| {
            Rgb::new((x % 256) as u8, (y % 256) as u8, ((x + y) % 256) as u8)
        });
        let ex = FeatureExtractor::new(w, h).unwrap();
        group.throughput(Throughput::Elements(u64::from(w) * u64::from(h)));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{w}x{h}")),
            &frame,
            |b, frame| {
                b.iter(|| ex.extract(black_box(frame)).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_reduce_line,
    bench_grid_signature,
    bench_extract_frame
);
criterion_main!(benches);
