//! Scene-tree construction benchmarks: the §3.1 `O(f²·n)` claim.
//!
//! Construction time is swept over the number of shots `n` (with fixed
//! frames per shot, so `f` grows with `n`): the measured growth should stay
//! at or below the paper's quadratic-in-f bound — in practice far below,
//! because RELATIONSHIP stops at the first related pair.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use vdb_core::pixel::Rgb;
use vdb_core::scenetree::build_scene_tree;
use vdb_core::shot::Shot;

/// A dialogue-heavy label pattern: locations cycle with occasional fresh
/// scenes, which is the realistic mix of related and unrelated shots.
fn scripted(n_shots: usize, frames_per_shot: usize) -> (Vec<Shot>, Vec<Rgb>) {
    let mut shots = Vec::with_capacity(n_shots);
    let mut signs = Vec::with_capacity(n_shots * frames_per_shot);
    let mut start = 0usize;
    for i in 0..n_shots {
        let label = if i % 7 == 6 {
            (i / 7 + 4) as u8
        } else {
            (i % 3) as u8
        };
        shots.push(Shot {
            id: i,
            start,
            end: start + frames_per_shot - 1,
        });
        // Within a shot, the sign wobbles a little (as real shots do).
        for f in 0..frames_per_shot {
            signs.push(Rgb::gray(
                label.wrapping_mul(37).wrapping_add((f % 3) as u8),
            ));
        }
        start += frames_per_shot;
    }
    (shots, signs)
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenetree/build");
    for n in [16usize, 64, 256, 1024] {
        let (shots, signs) = scripted(n, 12);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| build_scene_tree(black_box(&shots), black_box(&signs)));
        });
    }
    group.finish();
}

fn bench_largest_scene(c: &mut Criterion) {
    let (shots, signs) = scripted(512, 12);
    let tree = build_scene_tree(&shots, &signs);
    c.bench_function("scenetree/largest_scene_lookup", |b| {
        b.iter(|| {
            for s in (0..shots.len()).step_by(17) {
                black_box(tree.largest_scene_for_shot(black_box(s)));
            }
        });
    });
}

criterion_group!(benches, bench_build, bench_largest_scene);
criterion_main!(benches);
