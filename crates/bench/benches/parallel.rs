//! Parallel ingest-path benchmarks: frames/second of feature extraction
//! and of the full analysis pipeline, serial vs. 1/2/4/8 worker threads.
//!
//! Extraction dominates analysis cost and is embarrassingly parallel, so
//! `extract/*` should scale near-linearly until cores run out, while
//! `analyze/*` shows the same speed-up damped by the sequential cascade
//! and scene-tree amortized over it (Amdahl). `threads=1` vs `serial`
//! measures pure dispatch overhead: the parallel path with one worker
//! falls back to the serial loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use vdb_core::analyzer::{AnalyzerConfig, VideoAnalyzer};
use vdb_core::features::FeatureExtractor;
use vdb_core::parallel::{extract_features_parallel, Parallelism};
use vdb_synth::script::generate;
use vdb_synth::{build_script, Genre};

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn bench_extract(c: &mut Criterion) {
    let script = build_script(Genre::Sitcom, 16, Some(9.0), (160, 120), 555);
    let video = generate(&script).video;
    let (w, h) = video.dims();
    let extractor = FeatureExtractor::new(w, h).unwrap();
    let frames = video.frames();

    let mut group = c.benchmark_group("parallel/extract");
    group.sample_size(10);
    group.throughput(Throughput::Elements(frames.len() as u64));
    group.bench_function("serial", |b| {
        b.iter(|| {
            black_box(frames)
                .iter()
                .map(|f| extractor.extract(f).unwrap())
                .collect::<Vec<_>>()
        });
    });
    for threads in THREADS {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    extract_features_parallel(&extractor, black_box(frames), threads).unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_analyze(c: &mut Criterion) {
    let script = build_script(Genre::Sitcom, 16, Some(9.0), (160, 120), 555);
    let video = generate(&script).video;

    let mut group = c.benchmark_group("parallel/analyze");
    group.sample_size(10);
    group.throughput(Throughput::Elements(video.len() as u64));
    group.bench_function("serial", |b| {
        let analyzer = VideoAnalyzer::new();
        b.iter(|| analyzer.analyze(black_box(&video)).unwrap());
    });
    for threads in THREADS {
        let analyzer = VideoAnalyzer::with_config(AnalyzerConfig {
            parallelism: Parallelism::Threads(threads),
            ..AnalyzerConfig::default()
        });
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &analyzer,
            |b, analyzer| {
                b.iter(|| analyzer.analyze(black_box(&video)).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_extract, bench_analyze);
criterion_main!(benches);
