//! Substrate benchmarks: frame generation cost — the budget everything
//! else fits into (a corpus experiment is generation + analysis).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use vdb_synth::script::{generate, ShotSpec, VideoScript};
use vdb_synth::texture::World;
use vdb_synth::NoiseProfile;

fn bench_world_sampling(c: &mut Criterion) {
    let world = World::new(7, 2);
    c.bench_function("synth/world_color_at", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..1_000i64 {
                let p = world.color_at(black_box(i as f64 * 1.7), black_box(i as f64 * 0.9));
                acc = acc.wrapping_add(u32::from(p.r()));
            }
            acc
        });
    });
}

fn bench_generate(c: &mut Criterion) {
    let mut group = c.benchmark_group("synth/generate");
    group.sample_size(10);
    for (name, noise) in [
        ("clean", NoiseProfile::CLEAN),
        ("rough", NoiseProfile::rough()),
    ] {
        let mut script = VideoScript::small(3);
        script.noise = noise;
        for loc in 0..6u32 {
            script.push_shot(ShotSpec::fixed(loc, 12));
        }
        let frames = script.total_frames() as u64;
        group.throughput(Throughput::Elements(frames));
        group.bench_with_input(BenchmarkId::from_parameter(name), &script, |b, s| {
            b.iter(|| generate(black_box(s)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_world_sampling, bench_generate);
criterion_main!(benches);
