//! Journal group-commit benchmarks: K streamed commits sharing one write
//! barrier vs. waiting out a barrier per commit.
//!
//! The group-commit path is what lets `vdbd` ack many concurrent
//! streaming sessions off a single fsync: each session stages its records
//! under the database lock and waits on its [`vdb_store::CommitTicket`]
//! after releasing it, so every ticket staged while the leader is writing
//! rides the same barrier.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use vdb_core::analyzer::AnalyzerConfig;
use vdb_core::StreamingAnalyzer;
use vdb_core::VideoAnalysis;
use vdb_store::JournaledDatabase;
use vdb_synth::script::generate;
use vdb_synth::{build_script, Genre};

/// Sessions committed per iteration.
const K: usize = 8;

static NEXT_DIR: AtomicUsize = AtomicUsize::new(0);

fn fresh_journal() -> (PathBuf, JournaledDatabase) {
    let n = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("vdb-bench-journal-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bench.vdbj");
    let j = JournaledDatabase::open(&path, AnalyzerConfig::default()).unwrap();
    (dir, j)
}

/// One finished streaming analysis, cloned per commit so every iteration
/// journals identical bytes.
fn finished_analysis() -> ((u32, u32), f64, VideoAnalysis) {
    let clip = generate(&build_script(Genre::Drama, 3, Some(8.0), (48, 36), 33)).video;
    let mut analyzer = StreamingAnalyzer::new(AnalyzerConfig::default());
    analyzer.push_frames(clip.frames()).unwrap();
    ((48, 36), clip.fps(), analyzer.finish().unwrap())
}

fn bench_group_commit(c: &mut Criterion) {
    let (dims, fps, analysis) = finished_analysis();
    let mut group = c.benchmark_group("journal/commit");
    group.sample_size(10);
    group.throughput(Throughput::Elements(K as u64));

    // Stage all K commits, then wait all tickets: the first wait elects a
    // leader that writes every staged record under one barrier.
    group.bench_function(format!("group_commit_k{K}"), |b| {
        let analysis = &analysis;
        b.iter_batched(
            fresh_journal,
            |(dir, mut j)| {
                let tickets: Vec<_> = (0..K)
                    .map(|i| {
                        j.commit_stream(
                            format!("s{i}"),
                            dims,
                            fps,
                            analysis.clone(),
                            vec![],
                            vec![],
                        )
                        .unwrap()
                        .1
                    })
                    .collect();
                for ticket in tickets {
                    ticket.wait().unwrap();
                }
                drop(j);
                std::fs::remove_dir_all(&dir).unwrap();
            },
            criterion::BatchSize::LargeInput,
        )
    });

    // The contrast: wait out each commit's barrier before staging the
    // next, i.e. one fsync per commit.
    group.bench_function(format!("fsync_per_commit_k{K}"), |b| {
        let analysis = &analysis;
        b.iter_batched(
            fresh_journal,
            |(dir, mut j)| {
                for i in 0..K {
                    let (_, ticket) = j
                        .commit_stream(format!("s{i}"), dims, fps, analysis.clone(), vec![], vec![])
                        .unwrap();
                    ticket.wait().unwrap();
                }
                drop(j);
                std::fs::remove_dir_all(&dir).unwrap();
            },
            criterion::BatchSize::LargeInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_group_commit);
criterion_main!(benches);
