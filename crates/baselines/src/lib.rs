//! # vdb-baselines
//!
//! The comparison algorithms the paper positions itself against:
//!
//! * [`pixelwise::PixelwiseDetector`] — pairwise pixel differencing
//!   (1 threshold, fragile to any motion);
//! * [`histogram::HistogramDetector`] — twin-threshold color histograms
//!   (\[3–6\] in the paper; "at least three threshold values" \[2\]);
//! * [`ecr::EcrDetector`] — edge change ratio (\[7\]; "at least six different
//!   threshold values" \[2\]);
//! * [`hierarchy::BrowseTree`] — the time-based \[18\] and fixed four-level
//!   \[22\] browsing hierarchies, plus a conversion from the paper's scene
//!   tree so all three can be compared on shape and location purity.
//!
//! All detectors implement [`detector::ShotDetector`]; the paper's own
//! camera-tracking method is adapted to the same trait
//! ([`detector::CameraTracking`]) so the evaluation harness treats every
//! technique uniformly.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod detector;
pub mod ecr;
pub mod hierarchy;
pub mod histogram;
pub mod pixelwise;

pub use detector::{CameraTracking, ShotDetector};
pub use ecr::EcrDetector;
pub use hierarchy::BrowseTree;
pub use histogram::HistogramDetector;
pub use pixelwise::PixelwiseDetector;
