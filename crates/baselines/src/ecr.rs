//! Edge change ratio (ECR) shot boundary detection — Zabih, Miller & Mai
//! (\[7\] in the paper).
//!
//! Frames are reduced to edge maps (Sobel magnitude over luma); between
//! consecutive frames the *entering* edge fraction (new edges far from any
//! old edge) and *exiting* edge fraction (old edges far from any new edge)
//! are combined as `ECR = max(in, out)`. Cuts spike the ECR; dissolves and
//! fades raise it over a window.
//!
//! Faithful to the paper's critique, this technique needs **six** tunable
//! values: the Sobel edge threshold, the dilation radius, the hard-cut ECR
//! threshold, the gradual ECR threshold, the gradual window length, and the
//! minimum edge-pixel count below which frames are deemed featureless.

use crate::detector::ShotDetector;
use vdb_core::frame::{FrameBuf, Video};

/// A binary edge map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeMap {
    width: u32,
    height: u32,
    edges: Vec<bool>,
}

impl EdgeMap {
    /// Sobel edge map of a frame: luma gradient magnitude over `threshold`.
    pub fn of(frame: &FrameBuf, threshold: u16) -> Self {
        let (w, h) = frame.dims();
        let luma = |x: i64, y: i64| -> i32 { i32::from(frame.get_clamped(x, y).luma()) };
        let mut edges = vec![false; (w as usize) * (h as usize)];
        for y in 0..i64::from(h) {
            for x in 0..i64::from(w) {
                let gx = -luma(x - 1, y - 1) - 2 * luma(x - 1, y) - luma(x - 1, y + 1)
                    + luma(x + 1, y - 1)
                    + 2 * luma(x + 1, y)
                    + luma(x + 1, y + 1);
                let gy = -luma(x - 1, y - 1) - 2 * luma(x, y - 1) - luma(x + 1, y - 1)
                    + luma(x - 1, y + 1)
                    + 2 * luma(x, y + 1)
                    + luma(x + 1, y + 1);
                let mag = gx.unsigned_abs() + gy.unsigned_abs();
                if mag > u32::from(threshold) {
                    edges[(y as usize) * (w as usize) + (x as usize)] = true;
                }
            }
        }
        EdgeMap {
            width: w,
            height: h,
            edges,
        }
    }

    /// Number of edge pixels.
    pub fn count(&self) -> usize {
        self.edges.iter().filter(|&&e| e).count()
    }

    /// Box dilation by `radius` pixels.
    pub fn dilated(&self, radius: u32) -> EdgeMap {
        if radius == 0 {
            return self.clone();
        }
        let (w, h) = (self.width as i64, self.height as i64);
        let r = i64::from(radius);
        let mut out = vec![false; self.edges.len()];
        for y in 0..h {
            for x in 0..w {
                if !self.edges[(y * w + x) as usize] {
                    continue;
                }
                for dy in -r..=r {
                    for dx in -r..=r {
                        let (nx, ny) = (x + dx, y + dy);
                        if nx >= 0 && nx < w && ny >= 0 && ny < h {
                            out[(ny * w + nx) as usize] = true;
                        }
                    }
                }
            }
        }
        EdgeMap {
            width: self.width,
            height: self.height,
            edges: out,
        }
    }

    /// Fraction of this map's edge pixels that fall *outside* `other`
    /// (typically a dilated map). Returns 0 for an empty map.
    pub fn fraction_outside(&self, other: &EdgeMap) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let outside = self
            .edges
            .iter()
            .zip(&other.edges)
            .filter(|(&a, &b)| a && !b)
            .count();
        outside as f64 / total as f64
    }
}

/// Edge change ratio between two frames' edge maps.
pub fn edge_change_ratio(prev: &EdgeMap, next: &EdgeMap, radius: u32) -> f64 {
    let prev_dilated = prev.dilated(radius);
    let next_dilated = next.dilated(radius);
    let entering = next.fraction_outside(&prev_dilated);
    let exiting = prev.fraction_outside(&next_dilated);
    entering.max(exiting)
}

/// The six-parameter ECR detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EcrDetector {
    /// Sobel magnitude threshold for edge pixels.
    pub edge_threshold: u16,
    /// Dilation radius when testing edge correspondence.
    pub dilate_radius: u32,
    /// Hard cut when pair ECR exceeds this.
    pub t_cut: f64,
    /// Gradual-transition evidence when pair ECR exceeds this.
    pub t_gradual: f64,
    /// A gradual transition is declared when `window` consecutive pairs
    /// exceed `t_gradual`.
    pub window: usize,
    /// Frames with fewer edge pixels than this are featureless (fade
    /// bottoms); pairs involving them are skipped.
    pub min_edge_pixels: usize,
}

impl Default for EcrDetector {
    fn default() -> Self {
        EcrDetector {
            edge_threshold: 50,
            dilate_radius: 1,
            t_cut: 0.55,
            t_gradual: 0.30,
            window: 3,
            min_edge_pixels: 16,
        }
    }
}

impl ShotDetector for EcrDetector {
    fn name(&self) -> &'static str {
        "edge-change-ratio"
    }

    fn threshold_count(&self) -> usize {
        6
    }

    fn detect(&self, video: &Video) -> Vec<usize> {
        let maps: Vec<EdgeMap> = video
            .frames()
            .iter()
            .map(|f| EdgeMap::of(f, self.edge_threshold))
            .collect();
        let mut boundaries = Vec::new();
        let mut streak = 0usize;
        for i in 1..maps.len() {
            if maps[i - 1].count() < self.min_edge_pixels || maps[i].count() < self.min_edge_pixels
            {
                streak = 0;
                continue;
            }
            let ecr = edge_change_ratio(&maps[i - 1], &maps[i], self.dilate_radius);
            if ecr > self.t_cut {
                // Suppress the double report when a cut ends a gradual streak.
                if boundaries.last().map_or(true, |&b: &usize| b + 1 < i) {
                    boundaries.push(i);
                }
                streak = 0;
            } else if ecr > self.t_gradual {
                streak += 1;
                if streak == self.window {
                    boundaries.push(i + 1 - self.window / 2);
                    streak = 0;
                }
            } else {
                streak = 0;
            }
        }
        boundaries.dedup();
        boundaries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdb_core::pixel::Rgb;

    /// A frame with a vertical bar whose position encodes the "scene".
    fn bar_frame(pos: u32) -> FrameBuf {
        FrameBuf::from_fn(48, 36, |x, _| {
            if x >= pos && x < pos + 6 {
                Rgb::gray(255)
            } else {
                Rgb::gray(0)
            }
        })
    }

    #[test]
    fn edge_map_finds_bar_edges() {
        let m = EdgeMap::of(&bar_frame(10), 160);
        assert!(m.count() > 0);
        // Uniform frame has no edges.
        let flat = EdgeMap::of(&FrameBuf::filled(48, 36, Rgb::gray(80)), 160);
        assert_eq!(flat.count(), 0);
    }

    #[test]
    fn dilation_grows_edges() {
        let m = EdgeMap::of(&bar_frame(10), 160);
        assert!(m.dilated(2).count() > m.count());
        assert_eq!(m.dilated(0), m);
    }

    #[test]
    fn ecr_zero_for_identical_frames() {
        let m = EdgeMap::of(&bar_frame(10), 160);
        assert_eq!(edge_change_ratio(&m, &m, 1), 0.0);
    }

    #[test]
    fn ecr_high_for_displaced_structure() {
        let a = EdgeMap::of(&bar_frame(6), 160);
        let b = EdgeMap::of(&bar_frame(30), 160);
        assert!(edge_change_ratio(&a, &b, 1) > 0.9);
    }

    #[test]
    fn detects_structural_cut() {
        let mut frames = vec![bar_frame(8); 4];
        frames.extend(vec![bar_frame(32); 4]);
        let v = Video::new(frames, 3.0).unwrap();
        assert_eq!(EcrDetector::default().detect(&v), vec![4]);
    }

    #[test]
    fn tolerates_small_motion_within_dilation() {
        // 1 px/frame motion with dilation radius 1: edges stay within reach.
        let frames: Vec<FrameBuf> = (0..6).map(|t| bar_frame(8 + t)).collect();
        let v = Video::new(frames, 3.0).unwrap();
        assert!(EcrDetector::default().detect(&v).is_empty());
    }

    #[test]
    fn fast_motion_breaks_it() {
        // 8 px/frame motion outruns the dilation radius: false boundaries —
        // the sensitivity the paper criticizes.
        let frames: Vec<FrameBuf> = (0..6).map(|t| bar_frame(4 + t * 8)).collect();
        let v = Video::new(frames, 3.0).unwrap();
        assert!(
            !EcrDetector::default().detect(&v).is_empty(),
            "fast motion should fool the default ECR detector"
        );
    }

    #[test]
    fn featureless_frames_skipped() {
        // Fades pass through black (no edges): with the min-edge guard the
        // black frames produce no spurious boundaries.
        let mut frames = vec![bar_frame(8); 3];
        frames.extend(vec![FrameBuf::filled(48, 36, Rgb::gray(0)); 3]);
        frames.extend(vec![bar_frame(8); 3]);
        let v = Video::new(frames, 3.0).unwrap();
        let b = EcrDetector::default().detect(&v);
        assert!(
            b.is_empty(),
            "min-edge guard must suppress fade frames: {b:?}"
        );
    }

    #[test]
    fn six_thresholds() {
        assert_eq!(EcrDetector::default().threshold_count(), 6);
    }
}
