//! Browsing-hierarchy baselines the paper compares its scene tree against.
//!
//! * **Time-based** (Zhang et al. \[18\]): split the shot sequence into equal
//!   segments, recursively — "a drawback of this approach is that only time
//!   is considered; and no visual content is used".
//! * **Fixed four-level** (Rui et al. \[22\]): a video–scene–group–shot
//!   hierarchy whose height is the same for every video, however simple or
//!   complex its structure.
//!
//! Both are represented as a [`BrowseTree`] — a minimal rooted tree over
//! shot leaves — which the paper's scene tree also converts into, so the
//! evaluation can compare *shape* (height, node count) and *quality*
//! (location purity) uniformly.

use vdb_core::pixel::Rgb;
use vdb_core::relationship::shots_related;
use vdb_core::scenetree::SceneTree;
use vdb_core::shot::Shot;

/// A minimal rooted tree whose leaves are shot indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BrowseTree {
    /// `children[n]` lists node `n`'s children.
    children: Vec<Vec<usize>>,
    /// `leaf_shot[n]` is `Some(shot)` for leaves.
    leaf_shot: Vec<Option<usize>>,
    root: usize,
}

impl BrowseTree {
    fn new_node(&mut self, leaf: Option<usize>) -> usize {
        self.children.push(Vec::new());
        self.leaf_shot.push(leaf);
        self.children.len() - 1
    }

    /// The root node id.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.children.len()
    }

    /// Children of a node.
    pub fn children(&self, n: usize) -> &[usize] {
        &self.children[n]
    }

    /// The shot of a leaf node.
    pub fn leaf_shot(&self, n: usize) -> Option<usize> {
        self.leaf_shot[n]
    }

    /// Height: edges on the longest root-to-leaf path.
    pub fn height(&self) -> usize {
        fn depth(t: &BrowseTree, n: usize) -> usize {
            t.children[n]
                .iter()
                .map(|&c| 1 + depth(t, c))
                .max()
                .unwrap_or(0)
        }
        depth(self, self.root)
    }

    /// All shot indices under a node, in order.
    pub fn shots_under(&self, n: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![n];
        while let Some(m) = stack.pop() {
            if let Some(s) = self.leaf_shot[m] {
                out.push(s);
            }
            for &c in self.children[m].iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Leaf count.
    pub fn leaf_count(&self) -> usize {
        self.leaf_shot.iter().filter(|s| s.is_some()).count()
    }

    /// Location purity: for every internal node except the root (which, in
    /// any hierarchy, groups the entire video), the fraction of its leaf
    /// shots that share the node's majority location, averaged over those
    /// nodes weighted by leaf count. 1.0 means every scene grouping is
    /// location-coherent; a content-blind hierarchy scores lower.
    ///
    /// `locations[s]` is the ground-truth location of shot `s`.
    pub fn location_purity(&self, locations: &[u32]) -> f64 {
        let mut weighted = 0.0;
        let mut weight = 0.0;
        for n in 0..self.node_count() {
            if n == self.root || self.leaf_shot[n].is_some() || self.children[n].is_empty() {
                continue;
            }
            let shots = self.shots_under(n);
            if shots.len() < 2 {
                continue;
            }
            let mut counts: std::collections::HashMap<u32, usize> =
                std::collections::HashMap::new();
            for &s in &shots {
                *counts.entry(locations[s]).or_insert(0) += 1;
            }
            let majority = counts.values().copied().max().unwrap_or(0);
            weighted += (majority as f64 / shots.len() as f64) * shots.len() as f64;
            weight += shots.len() as f64;
        }
        if weight == 0.0 {
            1.0
        } else {
            weighted / weight
        }
    }

    /// Convert the paper's scene tree into the common representation.
    pub fn from_scene_tree(tree: &SceneTree) -> Self {
        let mut out = BrowseTree {
            children: Vec::new(),
            leaf_shot: Vec::new(),
            root: 0,
        };
        // Map scene-tree node ids to BrowseTree ids via DFS.
        let mut map = vec![usize::MAX; tree.len()];
        for id in tree.dfs() {
            let node = tree.node(id);
            let new = out.new_node(node.shot);
            map[id] = new;
            if let Some(p) = node.parent {
                let mapped_parent = map[p];
                out.children[mapped_parent].push(new);
            }
        }
        out.root = map[tree.root()];
        out
    }

    /// The time-based hierarchy of \[18\]: recursively split the shot list
    /// into `branching` equal segments until segments are single shots.
    pub fn time_based(n_shots: usize, branching: usize) -> Self {
        assert!(n_shots > 0 && branching >= 2);
        let mut out = BrowseTree {
            children: Vec::new(),
            leaf_shot: Vec::new(),
            root: 0,
        };
        fn split(out: &mut BrowseTree, shots: std::ops::Range<usize>, branching: usize) -> usize {
            let len = shots.end - shots.start;
            if len == 1 {
                return out.new_node(Some(shots.start));
            }
            let node = out.new_node(None);
            let parts = branching.min(len);
            let mut kids = Vec::with_capacity(parts);
            for p in 0..parts {
                let a = shots.start + len * p / parts;
                let b = shots.start + len * (p + 1) / parts;
                kids.push(split(out, a..b, branching));
            }
            out.children[node] = kids;
            node
        }
        out.root = split(&mut out, 0..n_shots, branching);
        out
    }

    /// The fixed four-level video–scene–group–shot hierarchy of \[22\]:
    /// adjacent related shots merge into *groups*, adjacent groups with any
    /// related shot pair merge into *scenes*, all scenes under the video
    /// root — always exactly this shape, however complex the video.
    pub fn fixed_four_level(shots: &[Shot], signs_ba: &[Rgb]) -> Self {
        assert!(!shots.is_empty());
        let sig = |s: &Shot| &signs_ba[s.start..=s.end];
        // Level 1: groups of adjacent related shots.
        let mut groups: Vec<Vec<usize>> = vec![vec![0]];
        for i in 1..shots.len() {
            let prev = *groups.last().unwrap().last().unwrap();
            if shots_related(sig(&shots[i]), sig(&shots[prev])) {
                groups.last_mut().unwrap().push(i);
            } else {
                groups.push(vec![i]);
            }
        }
        // Level 2: scenes of adjacent groups that share any related pair.
        let related_groups = |a: &[usize], b: &[usize]| {
            a.iter().any(|&x| {
                b.iter()
                    .any(|&y| shots_related(sig(&shots[x]), sig(&shots[y])))
            })
        };
        let mut scenes: Vec<Vec<usize>> = vec![vec![0]]; // indices into groups
        for g in 1..groups.len() {
            let prev = *scenes.last().unwrap().last().unwrap();
            if related_groups(&groups[g], &groups[prev]) {
                scenes.last_mut().unwrap().push(g);
            } else {
                scenes.push(vec![g]);
            }
        }
        // Assemble.
        let mut out = BrowseTree {
            children: Vec::new(),
            leaf_shot: Vec::new(),
            root: 0,
        };
        let root = out.new_node(None);
        out.root = root;
        for scene in &scenes {
            let scene_node = out.new_node(None);
            out.children[root].push(scene_node);
            for &g in scene {
                let group_node = out.new_node(None);
                out.children[scene_node].push(group_node);
                for &s in &groups[g] {
                    let leaf = out.new_node(Some(s));
                    out.children[group_node].push(leaf);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdb_core::scenetree::build_scene_tree;

    fn scripted(labels: &[(u8, usize)]) -> (Vec<Shot>, Vec<Rgb>) {
        let mut shots = Vec::new();
        let mut signs = Vec::new();
        let mut start = 0usize;
        for (id, &(label, len)) in labels.iter().enumerate() {
            shots.push(Shot {
                id,
                start,
                end: start + len - 1,
            });
            signs.extend(std::iter::repeat(Rgb::gray(label * 40)).take(len));
            start += len;
        }
        (shots, signs)
    }

    #[test]
    fn time_based_shape() {
        let t = BrowseTree::time_based(8, 2);
        assert_eq!(t.leaf_count(), 8);
        assert_eq!(t.height(), 3); // 8 -> 4 -> 2 -> 1
        assert_eq!(t.shots_under(t.root()), (0..8).collect::<Vec<_>>());
        let t3 = BrowseTree::time_based(9, 3);
        assert_eq!(t3.height(), 2); // 9 -> 3 -> 1
    }

    #[test]
    fn time_based_single_shot() {
        let t = BrowseTree::time_based(1, 2);
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn time_based_ignores_content() {
        // Purity of a time split over an alternating A/B dialogue is ~0.5:
        // the groups mix locations because time alone decides.
        let locations = [0u32, 1, 0, 1, 0, 1, 0, 1];
        let t = BrowseTree::time_based(8, 2);
        let p = t.location_purity(&locations);
        assert!(p < 0.7, "time-based purity {p}");
    }

    #[test]
    fn fixed_four_level_height_is_constant() {
        // Simple video: all unrelated.
        let (shots, signs) = scripted(&[(0, 3), (1, 3), (2, 3), (3, 3)]);
        let t = BrowseTree::fixed_four_level(&shots, &signs);
        assert_eq!(t.height(), 3, "video-scene-group-shot");
        assert_eq!(t.leaf_count(), 4);
        // Complex video: many repetitions — height still 3.
        let (shots2, signs2) = scripted(&[
            (0, 3),
            (1, 3),
            (0, 3),
            (2, 3),
            (0, 3),
            (3, 3),
            (3, 3),
            (4, 3),
        ]);
        let t2 = BrowseTree::fixed_four_level(&shots2, &signs2);
        assert_eq!(t2.height(), 3);
    }

    #[test]
    fn fixed_four_level_groups_adjacent_related() {
        let (shots, signs) = scripted(&[(0, 3), (0, 3), (1, 3), (1, 3)]);
        let t = BrowseTree::fixed_four_level(&shots, &signs);
        // Two groups of two; perfectly pure.
        assert_eq!(t.location_purity(&[0, 0, 1, 1]), 1.0);
    }

    #[test]
    fn scene_tree_conversion_preserves_shape() {
        let (shots, signs) = scripted(&[(0, 5), (1, 4), (0, 4), (2, 6), (0, 3)]);
        let tree = build_scene_tree(&shots, &signs);
        let bt = BrowseTree::from_scene_tree(&tree);
        assert_eq!(bt.leaf_count(), 5);
        assert_eq!(bt.node_count(), tree.len());
        assert_eq!(bt.height(), tree.height());
        let mut under = bt.shots_under(bt.root());
        under.sort_unstable();
        assert_eq!(under, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn scene_tree_beats_time_based_on_purity() {
        // The paper's claim in measurable form: on a dialogue-structured
        // video, the content-based scene tree groups by location; the
        // time-based hierarchy does not.
        let labels = [
            (0u8, 4),
            (1, 4),
            (0, 4),
            (1, 4),
            (2, 4),
            (3, 4),
            (2, 4),
            (3, 4),
        ];
        let (shots, signs) = scripted(&labels);
        let locations: Vec<u32> = labels.iter().map(|&(l, _)| u32::from(l)).collect();
        let scene = BrowseTree::from_scene_tree(&build_scene_tree(&shots, &signs));
        let time = BrowseTree::time_based(shots.len(), 2);
        assert!(
            scene.location_purity(&locations) > time.location_purity(&locations),
            "scene {} vs time {}",
            scene.location_purity(&locations),
            time.location_purity(&locations)
        );
    }

    #[test]
    fn purity_of_single_location_video_is_one() {
        let (shots, signs) = scripted(&[(0, 3), (0, 3), (0, 3)]);
        let t = BrowseTree::fixed_four_level(&shots, &signs);
        assert_eq!(t.location_purity(&[5, 5, 5]), 1.0);
    }
}
