//! Color-histogram shot boundary detection — the dominant 1990s technique
//! (\[3, 4, 5, 6\] in the paper).
//!
//! Each frame is summarized by a per-channel histogram; consecutive frames
//! are compared by normalized L1 histogram distance. Following the twin-
//! threshold scheme Lienhart's survey \[2\] describes, the detector needs
//! **three** thresholds: a hard-cut threshold, a lower gradual-transition
//! threshold that opens an accumulation window, and the accumulated-
//! difference threshold that confirms the gradual transition. The paper's
//! criticism — "their accuracy varies from 20% to 80% depending on those
//! values" — is reproduced by the sensitivity-sweep benchmark.

use crate::detector::ShotDetector;
use vdb_core::frame::{FrameBuf, Video};

/// Number of bins per channel.
pub const BINS: usize = 16;

/// A per-channel color histogram, normalized to frame size on comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColorHistogram {
    counts: [[u32; BINS]; 3],
    pixels: u32,
}

impl ColorHistogram {
    /// Histogram of one frame.
    pub fn of(frame: &FrameBuf) -> Self {
        let mut counts = [[0u32; BINS]; 3];
        for p in frame.pixels() {
            for ch in 0..3 {
                counts[ch][(p.0[ch] as usize * BINS) / 256] += 1;
            }
        }
        ColorHistogram {
            counts,
            pixels: frame.len() as u32,
        }
    }

    /// Normalized L1 distance in `\[0, 1\]`: 0 = identical distributions,
    /// 1 = disjoint.
    pub fn distance(&self, other: &ColorHistogram) -> f64 {
        let mut diff = 0u64;
        for ch in 0..3 {
            for b in 0..BINS {
                diff += u64::from(self.counts[ch][b].abs_diff(other.counts[ch][b]));
            }
        }
        // Max possible diff is 2 * pixels per channel * 3 channels.
        diff as f64 / (f64::from(self.pixels.max(other.pixels)) * 6.0)
    }
}

/// Twin-threshold color-histogram detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramDetector {
    /// Hard cut when the pair distance exceeds this.
    pub t_cut: f64,
    /// Open a gradual-transition window when the pair distance exceeds this
    /// (must be < `t_cut`).
    pub t_gradual: f64,
    /// Confirm the gradual transition when the *accumulated* distance from
    /// the window's start frame exceeds this.
    pub t_accumulated: f64,
}

impl Default for HistogramDetector {
    fn default() -> Self {
        HistogramDetector {
            t_cut: 0.35,
            t_gradual: 0.08,
            t_accumulated: 0.45,
        }
    }
}

impl ShotDetector for HistogramDetector {
    fn name(&self) -> &'static str {
        "color-histogram"
    }

    fn threshold_count(&self) -> usize {
        3
    }

    fn detect(&self, video: &Video) -> Vec<usize> {
        let hists: Vec<ColorHistogram> = video.frames().iter().map(ColorHistogram::of).collect();
        let mut boundaries = Vec::new();
        let mut window_start: Option<usize> = None;
        let mut i = 1;
        while i < hists.len() {
            let d = hists[i - 1].distance(&hists[i]);
            if d > self.t_cut {
                boundaries.push(i);
                window_start = None;
            } else if d > self.t_gradual {
                // Inside a potential gradual transition.
                let start = *window_start.get_or_insert(i - 1);
                let acc = hists[start].distance(&hists[i]);
                if acc > self.t_accumulated {
                    // Boundary at the window midpoint, per convention.
                    boundaries.push((start + i).div_ceil(2));
                    window_start = None;
                }
            } else {
                window_start = None;
            }
            i += 1;
        }
        boundaries.dedup();
        boundaries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdb_core::pixel::Rgb;

    fn solid(v: u8, n: usize) -> Vec<FrameBuf> {
        vec![FrameBuf::filled(40, 30, Rgb::gray(v)); n]
    }

    #[test]
    fn histogram_distance_bounds() {
        let a = ColorHistogram::of(&FrameBuf::filled(40, 30, Rgb::gray(0)));
        let b = ColorHistogram::of(&FrameBuf::filled(40, 30, Rgb::gray(255)));
        assert_eq!(a.distance(&a), 0.0);
        assert!((a.distance(&b) - 1.0).abs() < 1e-12);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn detects_hard_cut() {
        let mut frames = solid(20, 4);
        frames.extend(solid(200, 4));
        let v = Video::new(frames, 3.0).unwrap();
        assert_eq!(HistogramDetector::default().detect(&v), vec![4]);
    }

    #[test]
    fn blind_to_same_histogram_different_layout() {
        // The classic histogram failure mode: two very different images
        // with identical color distributions.
        let left = FrameBuf::from_fn(
            40,
            30,
            |x, _| {
                if x < 20 {
                    Rgb::gray(0)
                } else {
                    Rgb::gray(255)
                }
            },
        );
        let right = FrameBuf::from_fn(40, 30, |x, _| {
            if x >= 20 {
                Rgb::gray(0)
            } else {
                Rgb::gray(255)
            }
        });
        let mut frames = vec![left; 4];
        frames.extend(vec![right; 4]);
        let v = Video::new(frames, 3.0).unwrap();
        assert!(
            HistogramDetector::default().detect(&v).is_empty(),
            "histogram method cannot see a layout-only cut"
        );
    }

    #[test]
    fn gradual_transition_via_accumulation() {
        // A slow ramp: each step is small (below t_cut) but the total drift
        // is large; the twin-threshold accumulation must catch it once the
        // accumulated distance clears t_accumulated.
        let frames: Vec<FrameBuf> = (0..12)
            .map(|i| FrameBuf::filled(40, 30, Rgb::gray((i * 22) as u8)))
            .collect();
        let v = Video::new(frames, 3.0).unwrap();
        let det = HistogramDetector {
            t_cut: 0.95,
            t_gradual: 0.5,
            t_accumulated: 0.9,
        };
        // Each step moves the whole histogram one-plus bins: pair distance
        // 1.0 > t_gradual... with BINS=16, 22 levels per step = 1.375 bins:
        // most steps are full-distance. Use a detector tuned so pairs fall
        // between t_gradual and t_cut.
        let b = det.detect(&v);
        assert!(!b.is_empty(), "accumulation must fire on a long ramp");
    }

    #[test]
    fn default_thresholds_count() {
        let d = HistogramDetector::default();
        assert_eq!(d.threshold_count(), 3);
        assert_eq!(d.name(), "color-histogram");
        assert!(d.t_gradual < d.t_cut);
    }

    #[test]
    fn no_false_alarm_on_static() {
        let v = Video::new(solid(128, 8), 3.0).unwrap();
        assert!(HistogramDetector::default().detect(&v).is_empty());
    }
}
