//! Common interface for shot-boundary detectors.
//!
//! The paper's comparison point (§1, citing Lienhart's study \[2\]) is that
//! histogram detectors "need at least three threshold values", edge-change-
//! ratio detectors "at least six", and accuracy swings wildly with those
//! choices — while the camera-tracking cascade has three mild ones. Every
//! detector here reports its tunable-threshold count so the comparison
//! tables can print it.

use vdb_core::frame::Video;

/// A shot boundary detector: video in, boundary frame indices out.
pub trait ShotDetector {
    /// Human-readable name for report tables.
    fn name(&self) -> &'static str;

    /// Number of tunable thresholds the technique requires (the paper's
    /// practicality metric).
    fn threshold_count(&self) -> usize;

    /// Detect boundaries: the returned indices are the first frame of each
    /// new shot (ascending, no duplicates, never 0).
    fn detect(&self, video: &Video) -> Vec<usize>;
}

/// Adapter: the paper's camera-tracking detector behind the common trait.
#[derive(Debug, Clone, Default)]
pub struct CameraTracking {
    inner: vdb_core::sbd::CameraTrackingDetector,
}

impl CameraTracking {
    /// With default thresholds.
    pub fn new() -> Self {
        Self::default()
    }

    /// With explicit configuration.
    pub fn with_config(config: vdb_core::sbd::SbdConfig) -> Self {
        CameraTracking {
            inner: vdb_core::sbd::CameraTrackingDetector::with_config(config),
        }
    }
}

impl ShotDetector for CameraTracking {
    fn name(&self) -> &'static str {
        "camera-tracking"
    }

    fn threshold_count(&self) -> usize {
        // sign_same_max_diff, signature_same_max_diff, track_min_score.
        // (track_tolerance is a pixel-match definition, counted to be fair.)
        3
    }

    fn detect(&self, video: &Video) -> Vec<usize> {
        match self.inner.segment_video(video) {
            Ok((_, seg)) => seg.boundaries,
            Err(_) => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdb_core::frame::FrameBuf;
    use vdb_core::pixel::Rgb;

    #[test]
    fn camera_tracking_adapter_detects_cut() {
        let mut frames = vec![FrameBuf::filled(80, 60, Rgb::gray(20)); 5];
        frames.extend(vec![FrameBuf::filled(80, 60, Rgb::gray(220)); 5]);
        let v = Video::new(frames, 3.0).unwrap();
        let d = CameraTracking::new();
        assert_eq!(d.detect(&v), vec![5]);
        assert_eq!(d.name(), "camera-tracking");
        assert_eq!(d.threshold_count(), 3);
    }
}
