//! Pairwise pixel comparison — the oldest SBD baseline.
//!
//! Declares a boundary whenever the mean absolute per-channel difference
//! between consecutive frames exceeds a threshold. One threshold, extremely
//! cheap, and notoriously fragile: any camera or object motion inflates the
//! difference, so a threshold low enough to catch cuts between similar
//! scenes fires constantly during pans.

use crate::detector::ShotDetector;
use vdb_core::frame::Video;

/// Pairwise pixel difference detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PixelwiseDetector {
    /// Boundary when the mean absolute channel difference exceeds this
    /// (gray levels).
    pub threshold: f64,
}

impl Default for PixelwiseDetector {
    fn default() -> Self {
        // Calibrated on the synthetic corpus alongside the other detectors.
        PixelwiseDetector { threshold: 22.0 }
    }
}

impl ShotDetector for PixelwiseDetector {
    fn name(&self) -> &'static str {
        "pairwise-pixel"
    }

    fn threshold_count(&self) -> usize {
        1
    }

    fn detect(&self, video: &Video) -> Vec<usize> {
        video
            .frames()
            .windows(2)
            .enumerate()
            .filter(|(_, w)| w[0].mean_abs_diff(&w[1]) > self.threshold)
            .map(|(i, _)| i + 1)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdb_core::frame::FrameBuf;
    use vdb_core::pixel::Rgb;

    #[test]
    fn detects_hard_cut() {
        let mut frames = vec![FrameBuf::filled(40, 30, Rgb::gray(10)); 4];
        frames.extend(vec![FrameBuf::filled(40, 30, Rgb::gray(200)); 4]);
        let v = Video::new(frames, 3.0).unwrap();
        assert_eq!(PixelwiseDetector::default().detect(&v), vec![4]);
    }

    #[test]
    fn static_video_no_boundaries() {
        let v = Video::new(vec![FrameBuf::filled(40, 30, Rgb::gray(99)); 6], 3.0).unwrap();
        assert!(PixelwiseDetector::default().detect(&v).is_empty());
    }

    #[test]
    fn threshold_controls_sensitivity() {
        // A 15-level global change: default threshold rides over it, a tiny
        // threshold fires.
        let mut frames = vec![FrameBuf::filled(40, 30, Rgb::gray(100)); 3];
        frames.extend(vec![FrameBuf::filled(40, 30, Rgb::gray(115)); 3]);
        let v = Video::new(frames, 3.0).unwrap();
        assert!(PixelwiseDetector::default().detect(&v).is_empty());
        let strict = PixelwiseDetector { threshold: 5.0 };
        assert_eq!(strict.detect(&v), vec![3]);
    }

    #[test]
    fn motion_fragility_demonstrated() {
        // A moving high-contrast pattern splits constantly under a strict
        // threshold — the fragility the paper criticizes.
        let frames: Vec<FrameBuf> = (0..6)
            .map(|t| {
                FrameBuf::from_fn(40, 30, |x, _| {
                    if (x + t * 7) % 16 < 8 {
                        Rgb::gray(0)
                    } else {
                        Rgb::gray(255)
                    }
                })
            })
            .collect();
        let v = Video::new(frames, 3.0).unwrap();
        let strict = PixelwiseDetector { threshold: 10.0 };
        assert!(
            strict.detect(&v).len() >= 4,
            "in-shot motion must overwhelm the pixel detector"
        );
    }
}
